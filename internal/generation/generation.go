// Package generation implements the generation and pruning steps of
// Datamaran (§4.1, §4.2, Algorithm 1).
//
// The generation step finds structure-template candidates with at least α%
// coverage without knowing record boundaries: it enumerates RT-CharSet
// values (exhaustively, 2^c subsets, or greedily, O(c²) subsets), treats
// every pair of line boundaries at most L lines apart as a potential
// record, extracts and reduces each potential record to its minimal
// structure template, and accumulates per-template coverage in a hash
// table.
//
// The engine is shape-interned and arena-backed, sharing work across
// charset trials (not just within one):
//
//   - Every distinct tokenized line form ("shape") gets a small integer
//     id; its tokens live in one flat uint16 arena (template.TokField /
//     literal byte), with no per-token heap nodes. Shapes are interned for
//     the generator's lifetime, so a greedy trial that re-derives a shape
//     seen under a previous charset pays a map hit.
//   - A window of lines is identified by its shape sequence, interned
//     incrementally as (previous window id, added shape id) extensions.
//     Extensions resolve through per-shape successor arrays (transition
//     tables): succ[shape][prev+1] is a flat indexed load, no hashing in
//     the 10·n window loop. The reduction of each distinct window
//     identity to a minimal structure template is memoized across all
//     charset trials.
//   - Window-id chains are cached per start line and reused as long as
//     no line in the span changed shape since the chain was resolved —
//     a trial that re-tokenizes k lines re-resolves at most k·L window
//     starts; every other window rides a cached flat load.
//   - Tokenization is incremental: a line whose intersection with the
//     trial charset is unchanged keeps its shape id, and both searches
//     re-tokenize only the postings of the characters that changed —
//     the greedy search adds one character per trial, and the
//     exhaustive search enumerates subsets in Gray-code order
//     (chars.Subsets) so consecutive masks also differ by exactly one
//     character.
//   - Per-trial accumulators (bins, kept candidates) are flat slices
//     reused across genST calls, pre-sized by the first trial, so the
//     steady state allocates nothing.
//
// Output — candidate set, order, Coverage, FieldBytes — is identical to
// the reference engine in reference.go, pinned by equivalence tests.
//
// The pruning step orders the surviving candidates by the assimilation
// score G(T,S) = Cov × NonFieldCov and keeps the top M.
package generation

import (
	"sort"

	"datamaran/internal/chars"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// SearchMode selects how RT-CharSet values are enumerated (§9.1).
type SearchMode int

const (
	// Exhaustive enumerates all 2^c subsets of the present special
	// characters.
	Exhaustive SearchMode = iota
	// Greedy grows the charset one character at a time, keeping the
	// character whose charset produced the highest assimilation score
	// (O(c²) subsets).
	Greedy
)

func (m SearchMode) String() string {
	if m == Greedy {
		return "greedy"
	}
	return "exhaustive"
}

// Config holds the generation-step parameters (Table 2).
type Config struct {
	// Alpha is the minimum coverage threshold as a fraction of the
	// dataset bytes (the paper's α%, default 0.10).
	Alpha float64
	// MaxSpan is L, the maximum number of lines a record may span
	// (default 10).
	MaxSpan int
	// Search selects exhaustive or greedy charset enumeration.
	Search SearchMode
	// Candidates is RT-CharSet-Candidate. Zero value means
	// chars.DefaultCandidates().
	Candidates chars.Set
	// MaxExhaustive caps the number of distinct present special
	// characters enumerated exhaustively; beyond it, the most frequent
	// MaxExhaustive characters are used. Default 10.
	MaxExhaustive int
	// MaxCandidates caps the number of candidates returned (K).
	// Default 4096.
	MaxCandidates int
	// MaxRecordBytes skips potential records longer than this many
	// bytes (guards pathological spans). Default 1 << 14.
	MaxRecordBytes int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.10
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 10
	}
	if c.Candidates.Empty() {
		c.Candidates = chars.DefaultCandidates()
	}
	if c.MaxExhaustive == 0 {
		c.MaxExhaustive = 10
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4096
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 1 << 14
	}
	// shapeFieldMark (0x01) stands for a field run in interned shape
	// keys and can never be a formatting character: strip it so a
	// pathological candidate set cannot make a literal token collide
	// with the mark (DefaultCandidates holds only printable ASCII and
	// whitespace; both engines share this normalization).
	c.Candidates.Remove(shapeFieldMark)
	return c
}

// Candidate is a structure template surviving the coverage threshold, with
// the coverage statistics estimated during generation.
type Candidate struct {
	Template *template.Node
	// CharSet is the RT-CharSet under which the template was generated.
	CharSet chars.Set
	// Coverage is the total byte length of potential records reducing
	// to this template (an overlap-inflated estimate; exact coverage is
	// recomputed in the evaluation step).
	Coverage int
	// FieldBytes is the byte total of field values in those records.
	FieldBytes int
}

// Assimilation returns G(T,S) for the candidate from the generation-step
// estimates.
func (c Candidate) Assimilation() float64 {
	return score.Assimilation(c.Coverage, c.FieldBytes)
}

// Generate runs the generation step over lines and returns all candidates
// with at least α% coverage, ordered by assimilation score (best first)
// and capped at MaxCandidates.
func Generate(lines *textio.Lines, cfg Config) []Candidate {
	g := newGenerator(lines, cfg)
	g.search()
	return g.results()
}

// CharsetsTried runs a generation and reports how many RT-CharSet values
// were enumerated — the step-complexity experiment of Table 3. It drives
// the same generator and search code as Generate, so the complexity the
// experiment reports is by construction that of the real path.
func CharsetsTried(lines *textio.Lines, cfg Config) int {
	g := newGenerator(lines, cfg)
	g.search()
	return g.charsetsTried
}

// Prune is the pruning step: it keeps the topM candidates by assimilation
// score (§4.2). cands must already be sorted by Generate; Prune re-sorts
// defensively so it can be used on merged candidate lists.
func Prune(cands []Candidate, topM int) []Candidate {
	sortCandidates(cands)
	if topM > 0 && len(cands) > topM {
		cands = cands[:topM]
	}
	return cands
}

// shapeFieldMark is the byte standing for a field run in shape keys (it
// cannot collide with literal tokens: RT-CharSet candidates are printable
// ASCII and whitespace, never 0x01).
const shapeFieldMark = 0x01

// winExt names a window of lines by extension: the window [i, j) is the
// window [i, j-1) (its id) plus the shape of line j-1. Chains of
// extensions intern whole shape sequences without materializing them.
// The hot path resolves extensions through the per-shape transition
// tables; winExt keys only the rare overflow spill (see insertTrans).
type winExt struct {
	prev  int32 // window id of the s-1 prefix (-1 for s=1)
	shape int32 // shape id of the added line
}

// succEntryBudget caps the total int32 entries across all dense
// transition-table rows (16 MiB). Log-like data — few shapes, few window
// identities — stays far under it; a pathological high-entropy input
// whose rows would grow quadratically spills to the succOver map
// instead, trading the indexed load back for a hash probe rather than
// letting memory blow up. Purely a storage decision: lookups consult
// the row first and the spill second, so output is identical.
const succEntryBudget = 1 << 22

// binAcc accumulates one coverage bin for the current charset trial.
// Coverage counts greedily non-overlapping windows only (windows arrive
// in ascending start order), approximating Assumption 1's definition —
// the total length of instantiated records — rather than the
// overlap-inflated sum, which would let stacked multi-line repetitions of
// a one-line template dominate every true multi-line template.
type binAcc struct {
	tpl     int32 // interned template id
	cov     int
	fb      int
	lastEnd int
}

// generator holds the engine state. Everything below the per-trial
// section lives for the generator's lifetime: shapes, window identities
// and reduced templates discovered under one charset are reused by every
// later trial.
type generator struct {
	lines     *textio.Lines
	data      []byte
	n         int
	cfg       Config
	present   chars.Set
	threshold int

	// charsetsTried counts genST invocations (for complexity tests).
	charsetsTried int

	// Shape interner: shapeIDs maps a shape key (line bytes with field
	// runs collapsed to shapeFieldMark) to a shape id; the id's flat
	// tokens are toks[shapeOff[id]:shapeOff[id+1]].
	shapeIDs map[string]int32
	toks     []uint16
	shapeOff []int32
	keyBuf   []byte

	// Per-line tokenization state. tokSet[i] is the rtset∩line-chars
	// intersection under which lineShape[i]/lineFB[i] were computed; a
	// trial with the same intersection reuses them without touching the
	// line's bytes.
	lineIdx   *chars.LineIndex
	tokSet    []chars.Set
	lineShape []int32
	lineFB    []int
	tokBuf    []uint16

	// Window-identity transition tables: succ[shape] is a successor row
	// indexed by prev+1 (row 0 is the root, prev = -1) holding the
	// window id of the (prev, shape) extension, -1 when not yet
	// interned. Rows grow geometrically per shape, bounded in total by
	// succBudget; insertions past the budget spill to succOver. winTpl
	// maps a window id to its reduced template id (-1 = not a valid
	// record template), memoized across all charset trials.
	succ       [][]int32
	succLen    int // total dense entries allocated across rows
	succBudget int
	succOver   map[winExt]int32
	winTpl     []int32
	winBuf     []uint16
	red        template.FlatReducer

	// Per-start window-id chain cache: widCache[i*L : i*L+spanLen[i]]
	// is the id chain of windows starting at line i, valid while no
	// line in [i, i+L) changed shape since it was resolved
	// (startStale). spanLen[i] counts the spans the byte cap admits —
	// it depends only on line offsets, so it is computed once.
	spanLen    []int32
	widCache   []int32
	startStale []bool

	// Interned reduced templates (tplIDs owns the canonical keys).
	tplIDs map[string]int32
	tpls   []*template.Node

	// Derived-shape state for the exhaustive search (initDerived /
	// toggleChar): after the first full-charset trial tokenizes every
	// line byte-level, later trials never touch line bytes again — a
	// line's shape under any subset charset is derived from its
	// full-charset shape by turning dropped literals into field runs
	// (memoized per (full shape, surviving-char mask)), and its field
	// bytes follow arithmetically from the per-line character counts.
	members   []byte           // capped present members, ascending
	memberBit [256]int8        // byte → index in members, -1 otherwise
	lineFull  []int32          // shape id under the full capped charset
	lineMask  []uint16         // current local literal mask (bits local to the line's full shape)
	lineCnt   []int32          // lineCnt[i*K+m]: occurrences of members[m] in line i
	fsInfo    []*fullShapeInfo // per shape id; non-nil only for full-charset shapes

	// Per-trial accumulators, reused across genST calls (binOf is reset
	// to -1 for the touched templates at the end of each trial; bins and
	// kept keep their capacity — after the first trial sizes them, the
	// steady state allocates nothing).
	binOf []int32
	bins  []binAcc
	kept  []Candidate

	// Best candidate per template across charsets (the global hash
	// table of Algorithm 1): same template from different charsets keeps
	// the higher-coverage estimate.
	globalSet []bool
	global    []Candidate
}

func newGenerator(lines *textio.Lines, cfg Config) *generator {
	cfg = cfg.withDefaults()
	n := lines.N()
	g := &generator{
		lines:      lines,
		data:       lines.Data(),
		n:          n,
		cfg:        cfg,
		threshold:  int(cfg.Alpha * float64(len(lines.Data()))),
		shapeIDs:   make(map[string]int32, 64),
		shapeOff:   make([]int32, 1, 65),
		lineIdx:    chars.BuildLineIndex(n, lines.Line, cfg.Candidates),
		tokSet:     make([]chars.Set, n),
		lineShape:  make([]int32, n),
		lineFB:     make([]int, n),
		succBudget: succEntryBudget,
		tplIDs:     make(map[string]int32, 64),
		spanLen:    make([]int32, n),
		widCache:   make([]int32, n*cfg.MaxSpan),
		startStale: make([]bool, n),
	}
	g.present = chars.Present(cfg.Candidates, g.data)
	for i := range g.lineShape {
		g.lineShape[i] = -1 // not yet tokenized under any charset
	}
	for i := 0; i < n; i++ {
		g.startStale[i] = true
		m := int32(0)
		for s := 1; s <= cfg.MaxSpan && i+s <= n; s++ {
			if lines.Start(i+s)-lines.Start(i) > cfg.MaxRecordBytes {
				break
			}
			m++
		}
		g.spanLen[i] = m
	}
	return g
}

// search dispatches on the configured search mode. Generate and
// CharsetsTried share this one driver.
func (g *generator) search() {
	switch g.cfg.Search {
	case Greedy:
		g.greedySearch()
	default:
		g.exhaustiveSearch()
	}
}

// maxDerivedChars bounds the charset width the derived-shape exhaustive
// path handles (local masks are uint16, and per-shape memo rows are 2^k
// entries for a shape with k literal characters). capCharset keeps
// exhaustive charsets at MaxExhaustive (default 10) members, so the
// fallback below only triggers on configs that would enumerate 2^17+
// subsets anyway.
const maxDerivedChars = 16

// exhaustiveSearch enumerates all subsets of the present candidates
// (restricted to the MaxExhaustive most frequent characters when there are
// too many). chars.Subsets walks the masks in Gray-code order, so
// consecutive trials differ by exactly one character: after the first
// trial tokenizes every line under the full set, each later trial only
// toggles that character's postings — deriving each affected line's new
// shape from its full-charset shape without touching the line's bytes
// (every other line's charset intersection, and so its shape, is
// provably unchanged).
func (g *generator) exhaustiveSearch() {
	present := capCharset(g.lines, g.cfg, g.present)
	derived := present.Len() <= maxDerivedChars && g.n > 0
	first := true
	var prev chars.Set
	chars.Subsets(present, func(s chars.Set) bool {
		if first {
			first = false
			g.genST(s)
			if derived {
				g.initDerived(present)
			}
		} else {
			diff := s.Minus(prev).Union(prev.Minus(s))
			for _, c := range diff.Bytes() {
				if derived {
					g.toggleChar(c, s.Contains(c))
				} else {
					for _, li := range g.lineIdx.Lines(c) {
						g.shapeLine(int(li), s)
					}
				}
			}
			g.accumulate(s)
		}
		prev = s
		return true
	})
}

// fullShapeInfo is the derived-shape memo of one full-charset shape:
// which member characters appear as literals (localBit, assigning each a
// bit local to this shape) and the interned shape id of every literal
// subset already derived (row, indexed by local mask; the all-ones mask
// is the full shape itself).
type fullShapeInfo struct {
	localBit [maxDerivedChars]int8
	row      []int32
}

// initDerived prepares the derived-shape state after the first
// exhaustive trial: per-line member-character counts (one pass over the
// data — the last time any line's bytes are read), the full-charset
// shape and all-literals mask of every line, and the per-shape memo rows.
func (g *generator) initDerived(present chars.Set) {
	g.members = present.Bytes()
	k := len(g.members)
	for i := range g.memberBit {
		g.memberBit[i] = -1
	}
	for m, c := range g.members {
		g.memberBit[c] = int8(m)
	}
	g.lineFull = append([]int32(nil), g.lineShape...)
	g.lineMask = make([]uint16, g.n)
	g.lineCnt = make([]int32, g.n*k)
	g.fsInfo = make([]*fullShapeInfo, len(g.shapeOff)-1)
	for i := 0; i < g.n; i++ {
		if k > 0 {
			cnt := g.lineCnt[i*k : i*k+k]
			for _, b := range g.lines.Line(i) {
				if m := g.memberBit[b]; m >= 0 {
					cnt[m]++
				}
			}
		}
		info := g.fullInfo(g.lineShape[i])
		g.lineMask[i] = uint16(len(info.row) - 1)
	}
}

// fullInfo returns (building on first use) the derived-shape memo of a
// full-charset shape id.
func (g *generator) fullInfo(id int32) *fullShapeInfo {
	if info := g.fsInfo[id]; info != nil {
		return info
	}
	info := &fullShapeInfo{}
	var inShape [maxDerivedChars]bool
	for _, tok := range g.toks[g.shapeOff[id]:g.shapeOff[id+1]] {
		if tok < 256 && tok != '\n' {
			if m := g.memberBit[byte(tok)]; m >= 0 {
				inShape[m] = true
			}
		}
	}
	bits := 0
	for m := range info.localBit {
		info.localBit[m] = -1
		if inShape[m] {
			info.localBit[m] = int8(bits)
			bits++
		}
	}
	info.row = make([]int32, 1<<bits)
	for j := range info.row {
		info.row[j] = -1
	}
	info.row[len(info.row)-1] = id
	g.fsInfo[id] = info
	return info
}

// toggleChar updates every line containing c for a trial charset that
// added or removed exactly c: the line's field bytes move by its count
// of c (a dropped formatting character's occurrences become field
// bytes), and its shape follows from the memo row of its full-charset
// shape — deriving and interning the subset shape once per (full shape,
// mask), not per line per trial.
func (g *generator) toggleChar(c byte, added bool) {
	m := int(g.memberBit[c])
	k := len(g.members)
	for _, li := range g.lineIdx.Lines(c) {
		i := int(li)
		full := g.lineFull[i]
		info := g.fsInfo[full]
		lb := info.localBit[m]
		if lb < 0 {
			// c is in the line's bytes, so under the full charset it
			// must be one of the shape's literals.
			panic("generation: posted character missing from full shape")
		}
		cnt := int(g.lineCnt[i*k+m])
		mask := g.lineMask[i]
		if added {
			mask |= 1 << uint(lb)
			g.lineFB[i] -= cnt
		} else {
			mask &^= 1 << uint(lb)
			g.lineFB[i] += cnt
		}
		g.lineMask[i] = mask
		id := info.row[mask]
		if id < 0 {
			id = g.deriveShape(full, info, mask)
			info.row[mask] = id
		}
		if g.lineShape[i] != id {
			g.lineShape[i] = id
			g.markStale(i)
		}
	}
}

// deriveShape builds the shape of a full-charset shape restricted to the
// literal characters in mask: dropped literals become field runs, merged
// with any adjacent field runs — exactly the tokenization the byte-level
// path would produce under the smaller charset, without reading any line
// bytes. The result is interned like any other shape.
func (g *generator) deriveShape(full int32, info *fullShapeInfo, mask uint16) int32 {
	buf := g.tokBuf[:0]
	prevField := false
	for _, tok := range g.toks[g.shapeOff[full]:g.shapeOff[full+1]] {
		lit := false
		if tok != template.TokField {
			if b := byte(tok); b == '\n' {
				lit = true
			} else if lb := info.localBit[g.memberBit[b]]; mask&(1<<uint(lb)) != 0 {
				lit = true
			}
		}
		if lit {
			buf = append(buf, tok)
			prevField = false
		} else if !prevField {
			buf = append(buf, template.TokField)
			prevField = true
		}
	}
	g.tokBuf = buf
	return g.internShape(buf)
}

// greedySearch implements Algorithm 1's GreedySearch: starting from the
// empty charset, repeatedly add the character whose charset yields the
// best assimilation score, until a round produces no template with α%
// coverage. Each trial charset is the current charset plus one character,
// so only that character's postings are re-tokenized; every other line
// keeps its shape id from the current-charset snapshot.
func (g *generator) greedySearch() {
	var cur chars.Set
	g.genST(cur) // the empty charset still yields line templates F\n etc.

	// Snapshot the tokenization under cur; trials restore it.
	baseSet := append([]chars.Set(nil), g.tokSet...)
	baseShape := append([]int32(nil), g.lineShape...)
	baseFB := append([]int(nil), g.lineFB...)

	remaining := g.present.Bytes()
	for len(remaining) > 0 {
		bestScore := -1.0
		bestIdx := -1
		for i, c := range remaining {
			trial := cur
			trial.Add(c)
			posted := g.lineIdx.Lines(c)
			for _, li := range posted {
				g.shapeLine(int(li), trial)
			}
			found := g.accumulate(trial)
			for _, cand := range found {
				if a := cand.Assimilation(); a > bestScore {
					bestScore = a
					bestIdx = i
				}
			}
			for _, li := range posted {
				g.tokSet[li] = baseSet[li]
				if g.lineShape[li] != baseShape[li] {
					g.lineShape[li] = baseShape[li]
					g.markStale(int(li))
				}
				g.lineFB[li] = baseFB[li]
			}
		}
		if bestIdx < 0 {
			break // no charset this round produced an α%-coverage template
		}
		c := remaining[bestIdx]
		cur.Add(c)
		for _, li := range g.lineIdx.Lines(c) {
			g.shapeLine(int(li), cur)
			baseSet[li] = g.tokSet[li]
			baseShape[li] = g.lineShape[li]
			baseFB[li] = g.lineFB[li]
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// capCharset restricts an oversized charset to the most frequent
// MaxExhaustive characters in the data. Equal frequencies tie-break on
// byte value: the comparator must be a total order, or which character
// survives the cut would depend on sort.Slice's (unstable, Go-release-
// dependent) internals — and since the reference engine shares this
// helper, the oracle suite could never catch that drift.
func capCharset(lines *textio.Lines, cfg Config, present chars.Set) chars.Set {
	if present.Len() <= cfg.MaxExhaustive {
		return present
	}
	var freq [256]int
	for _, b := range lines.Data() {
		if present.Contains(b) {
			freq[b]++
		}
	}
	members := present.Bytes()
	sort.Slice(members, func(i, j int) bool {
		if freq[members[i]] != freq[members[j]] {
			return freq[members[i]] > freq[members[j]]
		}
		return members[i] < members[j]
	})
	var capped chars.Set
	for _, b := range members[:cfg.MaxExhaustive] {
		capped.Add(b)
	}
	return capped
}

// shapeLine tokenizes line i under rtset (template.AppendFlatTokens is
// the one flat tokenizer), interning the resulting shape. When rtset's
// intersection with the line's candidate characters is unchanged from the
// last tokenization, the line's shape id and field bytes are already
// correct and the line's bytes are never touched.
func (g *generator) shapeLine(i int, rtset chars.Set) {
	inter := rtset.Intersect(g.lineIdx.LineSet(i))
	if g.lineShape[i] >= 0 && g.tokSet[i] == inter {
		return
	}
	g.tokSet[i] = inter
	var fb int
	g.tokBuf, fb = template.AppendFlatTokens(g.tokBuf[:0], g.lines.Line(i), inter)
	id := g.internShape(g.tokBuf)
	if g.lineShape[i] != id {
		g.lineShape[i] = id
		g.markStale(i)
	}
	g.lineFB[i] = fb
}

// internShape interns a flat token sequence, returning its shape id
// (allocating the id, its arena block, and its transition row on first
// sight). Shared by the byte-level tokenizer (shapeLine) and the
// derived-shape path (deriveShape), so both produce the same ids for the
// same token sequence.
func (g *generator) internShape(toks []uint16) int32 {
	key := g.keyBuf[:0]
	for _, tok := range toks {
		if tok == template.TokField {
			key = append(key, shapeFieldMark)
		} else {
			key = append(key, byte(tok))
		}
	}
	g.keyBuf = key
	id, ok := g.shapeIDs[string(key)]
	if !ok {
		id = int32(len(g.shapeOff) - 1)
		g.shapeIDs[string(key)] = id
		g.toks = append(g.toks, toks...)
		g.shapeOff = append(g.shapeOff, int32(len(g.toks)))
		g.succ = append(g.succ, nil) // transition row, grown on demand
	}
	return id
}

// markStale invalidates the cached window-id chains of every start
// whose span covers line i — they must be re-resolved through the
// transition tables on the next accumulate.
func (g *generator) markStale(i int) {
	lo := i - g.cfg.MaxSpan + 1
	if lo < 0 {
		lo = 0
	}
	for k := lo; k <= i; k++ {
		g.startStale[k] = true
	}
}

// genST is Algorithm 1's GenST for one RT-CharSet value: tokenize every
// line (shape-memoized), then run the window accumulation.
func (g *generator) genST(rtset chars.Set) []Candidate {
	for i := 0; i < g.n; i++ {
		g.shapeLine(i, rtset)
	}
	return g.accumulate(rtset)
}

// accumulate enumerates all potential records (line-boundary pairs at
// most L apart) over the current per-line shapes and accumulates coverage
// per reduced template. It returns the candidates from this charset that
// meet the coverage threshold. Expensive work — reducing a window to its
// minimal template — happens once per distinct window identity across ALL
// trials; window identities resolve through flat per-shape transition
// tables, and whole id chains are reused from the per-start cache when no
// line in the span changed shape since the previous trial, so the 10·n
// loop below is indexed loads and flat slices — no hashing at all on the
// steady path.
func (g *generator) accumulate(rtset chars.Set) []Candidate {
	g.charsetsTried++
	if len(g.data) == 0 {
		return nil
	}
	n := g.n
	maxSpan := g.cfg.MaxSpan
	for i := 0; i < n; i++ {
		m := int(g.spanLen[i])
		if m == 0 {
			continue
		}
		chain := g.widCache[i*maxSpan : i*maxSpan+m]
		if g.startStale[i] {
			prev := int32(-1)
			for s := 1; s <= m; s++ {
				shape := g.lineShape[i+s-1]
				wid := g.lookupTrans(prev, shape)
				if wid < 0 {
					wid = int32(len(g.winTpl))
					g.insertTrans(prev, shape, wid)
					g.winTpl = append(g.winTpl, g.resolveWindow(i, i+s))
				}
				chain[s-1] = wid
				prev = wid
			}
			g.startStale[i] = false
		}
		fb := 0
		for s := 1; s <= m; s++ {
			j := i + s
			fb += g.lineFB[j-1]
			ti := g.winTpl[chain[s-1]]
			if ti < 0 {
				continue
			}
			bi := g.binOf[ti]
			if bi < 0 {
				bi = int32(len(g.bins))
				g.binOf[ti] = bi
				g.bins = append(g.bins, binAcc{tpl: ti})
			}
			b := &g.bins[bi]
			if i >= b.lastEnd {
				b.cov += g.lines.Start(j) - g.lines.Start(i)
				b.fb += fb
				b.lastEnd = j
			}
		}
	}

	// Keep templates meeting the coverage threshold; merge into the
	// global bins, then reset the per-trial state for the next charset.
	kept := g.kept[:0]
	for bi := range g.bins {
		b := &g.bins[bi]
		g.binOf[b.tpl] = -1
		if b.cov < g.threshold {
			continue
		}
		cand := Candidate{
			Template:   g.tpls[b.tpl],
			CharSet:    rtset,
			Coverage:   b.cov,
			FieldBytes: b.fb,
		}
		kept = append(kept, cand)
		if !g.globalSet[b.tpl] || cand.Coverage > g.global[b.tpl].Coverage {
			g.globalSet[b.tpl] = true
			g.global[b.tpl] = cand
		}
	}
	g.bins = g.bins[:0]
	g.kept = kept
	return kept
}

// lookupTrans resolves the (prev, shape) window extension to its window
// id, or -1 when the extension has not been interned yet. The dense row
// is authoritative for ids it holds; a -1 slot falls through to the
// overflow spill, which may have received the insert when the row was
// shorter (rows only grow, and fresh growth is filled with -1).
func (g *generator) lookupTrans(prev, shape int32) int32 {
	row := g.succ[shape]
	if idx := int(prev) + 1; idx < len(row) {
		if wid := row[idx]; wid >= 0 {
			return wid
		}
	}
	if g.succOver != nil {
		if wid, ok := g.succOver[winExt{prev: prev, shape: shape}]; ok {
			return wid
		}
	}
	return -1
}

// insertTrans records the (prev, shape) → wid extension, growing shape's
// dense row geometrically while the total stays under succBudget and
// spilling to the overflow map beyond it.
func (g *generator) insertTrans(prev, shape, wid int32) {
	idx := int(prev) + 1
	row := g.succ[shape]
	if idx >= len(row) {
		need := idx + 1
		newLen := 2 * len(row)
		if newLen < need {
			newLen = need
		}
		if newLen < 8 {
			newLen = 8
		}
		if g.succLen+newLen-len(row) > g.succBudget {
			if g.succLen+need-len(row) <= g.succBudget {
				newLen = need // no headroom for geometric growth, exact fit
			} else {
				if g.succOver == nil {
					g.succOver = make(map[winExt]int32)
				}
				g.succOver[winExt{prev: prev, shape: shape}] = wid
				return
			}
		}
		grown := make([]int32, newLen)
		copy(grown, row)
		for k := len(row); k < newLen; k++ {
			grown[k] = -1
		}
		g.succLen += newLen - len(row)
		g.succ[shape] = grown
		row = grown
	}
	row[idx] = wid
}

// resolveWindow reduces the window of lines [i, j) to its minimal
// structure template and interns it, returning the template id or -1 when
// the window is not a valid record template (no fields, or not
// newline-terminated). Called once per distinct window identity.
func (g *generator) resolveWindow(i, j int) int32 {
	if g.data[g.lines.Start(j)-1] != '\n' {
		return -1 // final line without a trailing newline
	}
	w := g.winBuf[:0]
	for k := i; k < j; k++ {
		sid := g.lineShape[k]
		w = append(w, g.toks[g.shapeOff[sid]:g.shapeOff[sid+1]]...)
	}
	g.winBuf = w
	tpl := g.red.Reduce(w)
	if tpl.NumFields() == 0 || !endsWithNewline(tpl) {
		return -1
	}
	key := tpl.Key()
	id, ok := g.tplIDs[key]
	if !ok {
		id = int32(len(g.tpls))
		g.tplIDs[key] = id
		g.tpls = append(g.tpls, tpl)
		g.binOf = append(g.binOf, -1)
		g.globalSet = append(g.globalSet, false)
		g.global = append(g.global, Candidate{})
	}
	return id
}

func (g *generator) results() []Candidate {
	out := make([]Candidate, 0, len(g.tpls))
	for ti := range g.tpls {
		if !g.globalSet[ti] {
			continue
		}
		c := g.global[ti]
		if template.IsPeriodicStack(c.Template) {
			// A k-fold stack of a shorter template (its 1-period
			// form is a separate bin with at least the same
			// coverage). Stacks flood the top-M pool with
			// near-duplicates of every popular one-record shape.
			continue
		}
		out = append(out, c)
	}
	sortCandidates(out)
	if len(out) > g.cfg.MaxCandidates {
		out = out[:g.cfg.MaxCandidates]
	}
	return out
}

func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		ai, aj := cands[i].Assimilation(), cands[j].Assimilation()
		if ai != aj {
			return ai > aj
		}
		// Deterministic tie-break: the shorter template wins (a
		// k-fold stack of a true multi-line template ties its
		// coverage but is k times longer), then key order.
		li, lj := cands[i].Template.Len(), cands[j].Template.Len()
		if li != lj {
			return li < lj
		}
		return cands[i].Template.Key() < cands[j].Template.Key()
	})
}

func endsWithNewline(st *template.Node) bool {
	switch st.Kind {
	case template.KLiteral:
		return len(st.Lit) > 0 && st.Lit[len(st.Lit)-1] == '\n'
	case template.KArray:
		return st.Term == '\n'
	case template.KStruct:
		if len(st.Children) == 0 {
			return false
		}
		return endsWithNewline(st.Children[len(st.Children)-1])
	}
	return false
}
