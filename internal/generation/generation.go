// Package generation implements the generation and pruning steps of
// Datamaran (§4.1, §4.2, Algorithm 1).
//
// The generation step finds structure-template candidates with at least α%
// coverage without knowing record boundaries: it enumerates RT-CharSet
// values (exhaustively, 2^c subsets, or greedily, O(c²) subsets), treats
// every pair of line boundaries at most L lines apart as a potential
// record, extracts and reduces each potential record to its minimal
// structure template, and accumulates per-template coverage in a hash
// table.
//
// The engine is shape-interned and arena-backed, sharing work across
// charset trials (not just within one):
//
//   - Every distinct tokenized line form ("shape") gets a small integer
//     id; its tokens live in one flat uint16 arena (template.TokField /
//     literal byte), with no per-token heap nodes. Shapes are interned for
//     the generator's lifetime, so a greedy trial that re-derives a shape
//     seen under a previous charset pays a map hit.
//   - A window of lines is identified by its shape sequence, interned
//     incrementally as (previous window id, added shape id) pairs; the
//     reduction of each distinct window identity to a minimal structure
//     template is memoized across all charset trials.
//   - Tokenization is incremental: a line whose intersection with the
//     trial charset is unchanged keeps its shape id, and the greedy
//     search re-tokenizes only the postings of the one character it adds
//     (chars.LineIndex).
//   - Per-trial accumulators (bins, kept candidates) are flat slices
//     reused across genST calls, pre-sized by the first trial, so the
//     steady state allocates nothing.
//
// Output — candidate set, order, Coverage, FieldBytes — is identical to
// the reference engine in reference.go, pinned by equivalence tests.
//
// The pruning step orders the surviving candidates by the assimilation
// score G(T,S) = Cov × NonFieldCov and keeps the top M.
package generation

import (
	"sort"

	"datamaran/internal/chars"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// SearchMode selects how RT-CharSet values are enumerated (§9.1).
type SearchMode int

const (
	// Exhaustive enumerates all 2^c subsets of the present special
	// characters.
	Exhaustive SearchMode = iota
	// Greedy grows the charset one character at a time, keeping the
	// character whose charset produced the highest assimilation score
	// (O(c²) subsets).
	Greedy
)

func (m SearchMode) String() string {
	if m == Greedy {
		return "greedy"
	}
	return "exhaustive"
}

// Config holds the generation-step parameters (Table 2).
type Config struct {
	// Alpha is the minimum coverage threshold as a fraction of the
	// dataset bytes (the paper's α%, default 0.10).
	Alpha float64
	// MaxSpan is L, the maximum number of lines a record may span
	// (default 10).
	MaxSpan int
	// Search selects exhaustive or greedy charset enumeration.
	Search SearchMode
	// Candidates is RT-CharSet-Candidate. Zero value means
	// chars.DefaultCandidates().
	Candidates chars.Set
	// MaxExhaustive caps the number of distinct present special
	// characters enumerated exhaustively; beyond it, the most frequent
	// MaxExhaustive characters are used. Default 10.
	MaxExhaustive int
	// MaxCandidates caps the number of candidates returned (K).
	// Default 4096.
	MaxCandidates int
	// MaxRecordBytes skips potential records longer than this many
	// bytes (guards pathological spans). Default 1 << 14.
	MaxRecordBytes int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.10
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 10
	}
	if c.Candidates.Empty() {
		c.Candidates = chars.DefaultCandidates()
	}
	if c.MaxExhaustive == 0 {
		c.MaxExhaustive = 10
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4096
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 1 << 14
	}
	// shapeFieldMark (0x01) stands for a field run in interned shape
	// keys and can never be a formatting character: strip it so a
	// pathological candidate set cannot make a literal token collide
	// with the mark (DefaultCandidates holds only printable ASCII and
	// whitespace; both engines share this normalization).
	c.Candidates.Remove(shapeFieldMark)
	return c
}

// Candidate is a structure template surviving the coverage threshold, with
// the coverage statistics estimated during generation.
type Candidate struct {
	Template *template.Node
	// CharSet is the RT-CharSet under which the template was generated.
	CharSet chars.Set
	// Coverage is the total byte length of potential records reducing
	// to this template (an overlap-inflated estimate; exact coverage is
	// recomputed in the evaluation step).
	Coverage int
	// FieldBytes is the byte total of field values in those records.
	FieldBytes int
}

// Assimilation returns G(T,S) for the candidate from the generation-step
// estimates.
func (c Candidate) Assimilation() float64 {
	return score.Assimilation(c.Coverage, c.FieldBytes)
}

// Generate runs the generation step over lines and returns all candidates
// with at least α% coverage, ordered by assimilation score (best first)
// and capped at MaxCandidates.
func Generate(lines *textio.Lines, cfg Config) []Candidate {
	g := newGenerator(lines, cfg)
	g.search()
	return g.results()
}

// CharsetsTried runs a generation and reports how many RT-CharSet values
// were enumerated — the step-complexity experiment of Table 3. It drives
// the same generator and search code as Generate, so the complexity the
// experiment reports is by construction that of the real path.
func CharsetsTried(lines *textio.Lines, cfg Config) int {
	g := newGenerator(lines, cfg)
	g.search()
	return g.charsetsTried
}

// Prune is the pruning step: it keeps the topM candidates by assimilation
// score (§4.2). cands must already be sorted by Generate; Prune re-sorts
// defensively so it can be used on merged candidate lists.
func Prune(cands []Candidate, topM int) []Candidate {
	sortCandidates(cands)
	if topM > 0 && len(cands) > topM {
		cands = cands[:topM]
	}
	return cands
}

// shapeFieldMark is the byte standing for a field run in shape keys (it
// cannot collide with literal tokens: RT-CharSet candidates are printable
// ASCII and whitespace, never 0x01).
const shapeFieldMark = 0x01

// winExt names a window of lines by extension: the window [i, j) is the
// window [i, j-1) (its id) plus the shape of line j-1. Chains of
// extensions intern whole shape sequences without materializing them.
type winExt struct {
	prev  int32 // window id of the s-1 prefix (-1 for s=1)
	shape int32 // shape id of the added line
}

// binAcc accumulates one coverage bin for the current charset trial.
// Coverage counts greedily non-overlapping windows only (windows arrive
// in ascending start order), approximating Assumption 1's definition —
// the total length of instantiated records — rather than the
// overlap-inflated sum, which would let stacked multi-line repetitions of
// a one-line template dominate every true multi-line template.
type binAcc struct {
	tpl     int32 // interned template id
	cov     int
	fb      int
	lastEnd int
}

// generator holds the engine state. Everything below the per-trial
// section lives for the generator's lifetime: shapes, window identities
// and reduced templates discovered under one charset are reused by every
// later trial.
type generator struct {
	lines     *textio.Lines
	data      []byte
	n         int
	cfg       Config
	present   chars.Set
	threshold int

	// charsetsTried counts genST invocations (for complexity tests).
	charsetsTried int

	// Shape interner: shapeIDs maps a shape key (line bytes with field
	// runs collapsed to shapeFieldMark) to a shape id; the id's flat
	// tokens are toks[shapeOff[id]:shapeOff[id+1]].
	shapeIDs map[string]int32
	toks     []uint16
	shapeOff []int32
	keyBuf   []byte

	// Per-line tokenization state. tokSet[i] is the rtset∩line-chars
	// intersection under which lineShape[i]/lineFB[i] were computed; a
	// trial with the same intersection reuses them without touching the
	// line's bytes.
	lineIdx   *chars.LineIndex
	tokSet    []chars.Set
	lineShape []int32
	lineFB    []int
	tokBuf    []uint16

	// Window-identity chain and the per-identity reduced template
	// (winTpl, -1 = not a valid record template), memoized across all
	// charset trials.
	winIDs map[winExt]int32
	winTpl []int32
	winBuf []uint16
	red    template.FlatReducer

	// Interned reduced templates (tplIDs owns the canonical keys).
	tplIDs map[string]int32
	tpls   []*template.Node

	// Per-trial accumulators, reused across genST calls (binOf is reset
	// to -1 for the touched templates at the end of each trial; bins and
	// kept keep their capacity — after the first trial sizes them, the
	// steady state allocates nothing).
	binOf []int32
	bins  []binAcc
	kept  []Candidate

	// Best candidate per template across charsets (the global hash
	// table of Algorithm 1): same template from different charsets keeps
	// the higher-coverage estimate.
	globalSet []bool
	global    []Candidate
}

func newGenerator(lines *textio.Lines, cfg Config) *generator {
	cfg = cfg.withDefaults()
	n := lines.N()
	g := &generator{
		lines:     lines,
		data:      lines.Data(),
		n:         n,
		cfg:       cfg,
		threshold: int(cfg.Alpha * float64(len(lines.Data()))),
		shapeIDs:  make(map[string]int32, 64),
		shapeOff:  make([]int32, 1, 65),
		lineIdx:   chars.BuildLineIndex(n, lines.Line, cfg.Candidates),
		tokSet:    make([]chars.Set, n),
		lineShape: make([]int32, n),
		lineFB:    make([]int, n),
		winIDs:    make(map[winExt]int32, 2*n),
		tplIDs:    make(map[string]int32, 64),
	}
	g.present = chars.Present(cfg.Candidates, g.data)
	for i := range g.lineShape {
		g.lineShape[i] = -1 // not yet tokenized under any charset
	}
	return g
}

// search dispatches on the configured search mode. Generate and
// CharsetsTried share this one driver.
func (g *generator) search() {
	switch g.cfg.Search {
	case Greedy:
		g.greedySearch()
	default:
		g.exhaustiveSearch()
	}
}

// exhaustiveSearch enumerates all subsets of the present candidates
// (restricted to the MaxExhaustive most frequent characters when there are
// too many). Consecutive subsets usually differ in few characters, so the
// per-line intersection memo in shapeLine skips most re-tokenization.
func (g *generator) exhaustiveSearch() {
	present := capCharset(g.lines, g.cfg, g.present)
	chars.Subsets(present, func(s chars.Set) bool {
		g.genST(s)
		return true
	})
}

// greedySearch implements Algorithm 1's GreedySearch: starting from the
// empty charset, repeatedly add the character whose charset yields the
// best assimilation score, until a round produces no template with α%
// coverage. Each trial charset is the current charset plus one character,
// so only that character's postings are re-tokenized; every other line
// keeps its shape id from the current-charset snapshot.
func (g *generator) greedySearch() {
	var cur chars.Set
	g.genST(cur) // the empty charset still yields line templates F\n etc.

	// Snapshot the tokenization under cur; trials restore it.
	baseSet := append([]chars.Set(nil), g.tokSet...)
	baseShape := append([]int32(nil), g.lineShape...)
	baseFB := append([]int(nil), g.lineFB...)

	remaining := g.present.Bytes()
	for len(remaining) > 0 {
		bestScore := -1.0
		bestIdx := -1
		for i, c := range remaining {
			trial := cur
			trial.Add(c)
			posted := g.lineIdx.Lines(c)
			for _, li := range posted {
				g.shapeLine(int(li), trial)
			}
			found := g.accumulate(trial)
			for _, cand := range found {
				if a := cand.Assimilation(); a > bestScore {
					bestScore = a
					bestIdx = i
				}
			}
			for _, li := range posted {
				g.tokSet[li] = baseSet[li]
				g.lineShape[li] = baseShape[li]
				g.lineFB[li] = baseFB[li]
			}
		}
		if bestIdx < 0 {
			break // no charset this round produced an α%-coverage template
		}
		c := remaining[bestIdx]
		cur.Add(c)
		for _, li := range g.lineIdx.Lines(c) {
			g.shapeLine(int(li), cur)
			baseSet[li] = g.tokSet[li]
			baseShape[li] = g.lineShape[li]
			baseFB[li] = g.lineFB[li]
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// capCharset restricts an oversized charset to the most frequent
// MaxExhaustive characters in the data.
func capCharset(lines *textio.Lines, cfg Config, present chars.Set) chars.Set {
	if present.Len() <= cfg.MaxExhaustive {
		return present
	}
	var freq [256]int
	for _, b := range lines.Data() {
		if present.Contains(b) {
			freq[b]++
		}
	}
	members := present.Bytes()
	sort.Slice(members, func(i, j int) bool { return freq[members[i]] > freq[members[j]] })
	var capped chars.Set
	for _, b := range members[:cfg.MaxExhaustive] {
		capped.Add(b)
	}
	return capped
}

// shapeLine tokenizes line i under rtset (template.AppendFlatTokens is
// the one flat tokenizer), interning the resulting shape. When rtset's
// intersection with the line's candidate characters is unchanged from the
// last tokenization, the line's shape id and field bytes are already
// correct and the line's bytes are never touched.
func (g *generator) shapeLine(i int, rtset chars.Set) {
	inter := rtset.Intersect(g.lineIdx.LineSet(i))
	if g.lineShape[i] >= 0 && g.tokSet[i] == inter {
		return
	}
	g.tokSet[i] = inter
	var fb int
	g.tokBuf, fb = template.AppendFlatTokens(g.tokBuf[:0], g.lines.Line(i), inter)
	key := g.keyBuf[:0]
	for _, tok := range g.tokBuf {
		if tok == template.TokField {
			key = append(key, shapeFieldMark)
		} else {
			key = append(key, byte(tok))
		}
	}
	g.keyBuf = key
	id, ok := g.shapeIDs[string(key)]
	if !ok {
		id = int32(len(g.shapeOff) - 1)
		g.shapeIDs[string(key)] = id
		g.toks = append(g.toks, g.tokBuf...)
		g.shapeOff = append(g.shapeOff, int32(len(g.toks)))
	}
	g.lineShape[i] = id
	g.lineFB[i] = fb
}

// genST is Algorithm 1's GenST for one RT-CharSet value: tokenize every
// line (shape-memoized), then run the window accumulation.
func (g *generator) genST(rtset chars.Set) []Candidate {
	for i := 0; i < g.n; i++ {
		g.shapeLine(i, rtset)
	}
	return g.accumulate(rtset)
}

// accumulate enumerates all potential records (line-boundary pairs at
// most L apart) over the current per-line shapes and accumulates coverage
// per reduced template. It returns the candidates from this charset that
// meet the coverage threshold. Expensive work — reducing a window to its
// minimal template — happens once per distinct window identity across ALL
// trials; the 10·n loop below touches only integer-keyed maps and flat
// slices.
func (g *generator) accumulate(rtset chars.Set) []Candidate {
	g.charsetsTried++
	if len(g.data) == 0 {
		return nil
	}
	n := g.n
	maxSpan := g.cfg.MaxSpan
	maxBytes := g.cfg.MaxRecordBytes
	for i := 0; i < n; i++ {
		prev := int32(-1)
		fb := 0
		for s := 1; s <= maxSpan && i+s <= n; s++ {
			j := i + s
			fb += g.lineFB[j-1]
			blockLen := g.lines.Start(j) - g.lines.Start(i)
			if blockLen > maxBytes {
				break
			}
			ext := winExt{prev: prev, shape: g.lineShape[j-1]}
			wid, ok := g.winIDs[ext]
			if !ok {
				wid = int32(len(g.winTpl))
				g.winIDs[ext] = wid
				g.winTpl = append(g.winTpl, g.resolveWindow(i, j))
			}
			prev = wid
			ti := g.winTpl[wid]
			if ti < 0 {
				continue
			}
			bi := g.binOf[ti]
			if bi < 0 {
				bi = int32(len(g.bins))
				g.binOf[ti] = bi
				g.bins = append(g.bins, binAcc{tpl: ti})
			}
			b := &g.bins[bi]
			if i >= b.lastEnd {
				b.cov += blockLen
				b.fb += fb
				b.lastEnd = j
			}
		}
	}

	// Keep templates meeting the coverage threshold; merge into the
	// global bins, then reset the per-trial state for the next charset.
	kept := g.kept[:0]
	for bi := range g.bins {
		b := &g.bins[bi]
		g.binOf[b.tpl] = -1
		if b.cov < g.threshold {
			continue
		}
		cand := Candidate{
			Template:   g.tpls[b.tpl],
			CharSet:    rtset,
			Coverage:   b.cov,
			FieldBytes: b.fb,
		}
		kept = append(kept, cand)
		if !g.globalSet[b.tpl] || cand.Coverage > g.global[b.tpl].Coverage {
			g.globalSet[b.tpl] = true
			g.global[b.tpl] = cand
		}
	}
	g.bins = g.bins[:0]
	g.kept = kept
	return kept
}

// resolveWindow reduces the window of lines [i, j) to its minimal
// structure template and interns it, returning the template id or -1 when
// the window is not a valid record template (no fields, or not
// newline-terminated). Called once per distinct window identity.
func (g *generator) resolveWindow(i, j int) int32 {
	if g.data[g.lines.Start(j)-1] != '\n' {
		return -1 // final line without a trailing newline
	}
	w := g.winBuf[:0]
	for k := i; k < j; k++ {
		sid := g.lineShape[k]
		w = append(w, g.toks[g.shapeOff[sid]:g.shapeOff[sid+1]]...)
	}
	g.winBuf = w
	tpl := g.red.Reduce(w)
	if tpl.NumFields() == 0 || !endsWithNewline(tpl) {
		return -1
	}
	key := tpl.Key()
	id, ok := g.tplIDs[key]
	if !ok {
		id = int32(len(g.tpls))
		g.tplIDs[key] = id
		g.tpls = append(g.tpls, tpl)
		g.binOf = append(g.binOf, -1)
		g.globalSet = append(g.globalSet, false)
		g.global = append(g.global, Candidate{})
	}
	return id
}

func (g *generator) results() []Candidate {
	out := make([]Candidate, 0, len(g.tpls))
	for ti := range g.tpls {
		if !g.globalSet[ti] {
			continue
		}
		c := g.global[ti]
		if template.IsPeriodicStack(c.Template) {
			// A k-fold stack of a shorter template (its 1-period
			// form is a separate bin with at least the same
			// coverage). Stacks flood the top-M pool with
			// near-duplicates of every popular one-record shape.
			continue
		}
		out = append(out, c)
	}
	sortCandidates(out)
	if len(out) > g.cfg.MaxCandidates {
		out = out[:g.cfg.MaxCandidates]
	}
	return out
}

func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		ai, aj := cands[i].Assimilation(), cands[j].Assimilation()
		if ai != aj {
			return ai > aj
		}
		// Deterministic tie-break: the shorter template wins (a
		// k-fold stack of a true multi-line template ties its
		// coverage but is k times longer), then key order.
		li, lj := cands[i].Template.Len(), cands[j].Template.Len()
		if li != lj {
			return li < lj
		}
		return cands[i].Template.Key() < cands[j].Template.Key()
	})
}

func endsWithNewline(st *template.Node) bool {
	switch st.Kind {
	case template.KLiteral:
		return len(st.Lit) > 0 && st.Lit[len(st.Lit)-1] == '\n'
	case template.KArray:
		return st.Term == '\n'
	case template.KStruct:
		if len(st.Children) == 0 {
			return false
		}
		return endsWithNewline(st.Children[len(st.Children)-1])
	}
	return false
}
