//go:build race

package generation

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip and equivalence sweeps trim under it.
const raceEnabled = true
