package generation

import (
	"fmt"
	"strings"
	"testing"

	"datamaran/internal/chars"
	"datamaran/internal/textio"
)

// TestGenSTSteadyStateAllocs pins the arena contract of the
// shape-interned engine: once a charset's shapes, window identities and
// reduced templates are interned (the first trial pays for them), a
// repeated genST over the same input touches only the interned state and
// the reused per-trial bins — zero heap allocations. This is the
// generation-step counterpart of the parser's ScanArenaReuse pin, and
// what keeps the O(c²) greedy trials off the allocator on repeated
// shapes.
func TestGenSTSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var b strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\nstatus=%d ok\n", i, i*2, i*3, i%7)
	}
	lines := textio.NewLines([]byte(b.String()))
	g := newGenerator(lines, Config{})
	rtset := chars.NewSet(",= ")

	g.genST(rtset) // warm: interns shapes/windows/templates, sizes the bins

	allocs := testing.AllocsPerRun(20, func() {
		g.genST(rtset)
	})
	if allocs > 0 {
		t.Fatalf("steady-state genST allocated %.1f objects per run, want 0", allocs)
	}
}

// TestGenSTSteadyStateAllocsAcrossCharsets extends the pin to the greedy
// search's access pattern: alternating between charsets whose shapes are
// all interned must also stay allocation-free — the cross-trial sharing
// is the point of the generator-lifetime caches.
func TestGenSTSteadyStateAllocsAcrossCharsets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var b strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%d|%d\n", i, i*2, i*3)
	}
	lines := textio.NewLines([]byte(b.String()))
	g := newGenerator(lines, Config{})
	sets := []chars.Set{chars.NewSet(","), chars.NewSet("|"), chars.NewSet(",|")}
	for _, s := range sets {
		g.genST(s) // warm every charset once
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, s := range sets {
			g.genST(s)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state charset alternation allocated %.1f objects per run, want 0", allocs)
	}
}
