package generation

// Test-only bridges: the oracle equivalence and fuzz suites live in the
// external generation_test package (the datagen corpus transitively
// imports this package, so an internal test would be an import cycle),
// but the reference engine stays unexported.
var GenerateReference = generateReference

// RaceEnabled mirrors the build-tagged raceEnabled for external tests.
const RaceEnabled = raceEnabled
