package generation

import (
	"strings"

	"datamaran/internal/chars"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// This file preserves the pre-interning generation engine verbatim as the
// oracle for the shape-interned engine in generation.go: generateReference
// re-tokenizes every line and re-reduces every window from scratch for
// each charset trial, exactly as the engine shipped before the rewrite.
// It is deliberately simple and slow; the equivalence property tests pin
// Generate's candidate set, order, Coverage and FieldBytes to its output,
// which is what lets the hot path keep changing safely. Do not optimize
// this file.

// generateReference runs the generation step with the reference engine.
// Its output is the contract for Generate.
func generateReference(lines *textio.Lines, cfg Config) []Candidate {
	cfg = cfg.withDefaults()
	present := chars.Present(cfg.Candidates, lines.Data())
	g := &refGenerator{lines: lines, cfg: cfg, bins: map[string]*Candidate{}}
	switch cfg.Search {
	case Greedy:
		g.greedySearch(present)
	default:
		g.exhaustiveSearch(present)
	}
	return g.results()
}

type refGenerator struct {
	lines *textio.Lines
	cfg   Config
	bins  map[string]*Candidate
}

func (g *refGenerator) exhaustiveSearch(present chars.Set) {
	present = capCharset(g.lines, g.cfg, present)
	chars.Subsets(present, func(s chars.Set) bool {
		g.genST(s)
		return true
	})
}

func (g *refGenerator) greedySearch(present chars.Set) {
	var cur chars.Set
	g.genST(cur) // the empty charset still yields line templates F\n etc.
	remaining := present.Bytes()
	for len(remaining) > 0 {
		bestScore := -1.0
		bestIdx := -1
		for i, c := range remaining {
			trial := cur
			trial.Add(c)
			found := g.genST(trial)
			for _, cand := range found {
				if a := cand.Assimilation(); a > bestScore {
					bestScore = a
					bestIdx = i
				}
			}
		}
		if bestIdx < 0 {
			break // no charset this round produced an α%-coverage template
		}
		cur.Add(remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// genST enumerates all potential records under one RT-CharSet value,
// reducing each distinct window from scratch (per-line []*template.Node
// tokens, per-call shape and window maps).
func (g *refGenerator) genST(rtset chars.Set) []Candidate {
	lines := g.lines
	n := lines.N()
	data := lines.Data()
	total := len(data)
	if total == 0 {
		return nil
	}
	threshold := int(g.cfg.Alpha * float64(total))

	lineToks := make([][]*template.Node, n)
	lineFB := make([]int, n)
	lineShape := make([]int32, n)
	shapeIDs := map[string]int32{}
	for i := 0; i < n; i++ {
		toks, fb := template.ExtractRecordTemplate(lines.Line(i), rtset)
		lineToks[i] = toks
		lineFB[i] = fb
		raw := rawKey(toks)
		id, ok := shapeIDs[raw]
		if !ok {
			id = int32(len(shapeIDs))
			shapeIDs[raw] = id
		}
		lineShape[i] = id
	}

	type winExtRef struct {
		prev  int32
		shape int32
	}
	winIDs := map[winExtRef]int32{}
	var winBin []int32

	type binAccRef struct {
		cand    Candidate
		lastEnd int
	}
	var binList []*binAccRef
	binIdx := map[string]int32{}

	resolveWindow := func(i, j int) int32 {
		tokCount := 0
		for k := i; k < j; k++ {
			tokCount += len(lineToks[k])
		}
		toks := make([]*template.Node, 0, tokCount)
		for k := i; k < j; k++ {
			toks = append(toks, lineToks[k]...)
		}
		tpl := template.Reduce(toks)
		if tpl.NumFields() == 0 || !endsWithNewline(tpl) {
			return -1
		}
		key := tpl.Key()
		bi, ok := binIdx[key]
		if !ok {
			bi = int32(len(binList))
			binIdx[key] = bi
			binList = append(binList, &binAccRef{cand: Candidate{Template: tpl, CharSet: rtset}})
		}
		return bi
	}

	for i := 0; i < n; i++ {
		prev := int32(-1)
		fb := 0
		for s := 1; s <= g.cfg.MaxSpan && i+s <= n; s++ {
			j := i + s
			fb += lineFB[j-1]
			blockLen := lines.Start(j) - lines.Start(i)
			if blockLen > g.cfg.MaxRecordBytes {
				break
			}
			ext := winExtRef{prev: prev, shape: lineShape[j-1]}
			wid, ok := winIDs[ext]
			if !ok {
				wid = int32(len(winBin))
				winIDs[ext] = wid
				if data[lines.Start(j)-1] != '\n' {
					winBin = append(winBin, -1)
				} else {
					winBin = append(winBin, resolveWindow(i, j))
				}
			}
			prev = wid
			bi := winBin[wid]
			if bi < 0 {
				continue
			}
			b := binList[bi]
			if i >= b.lastEnd {
				b.cand.Coverage += blockLen
				b.cand.FieldBytes += fb
				b.lastEnd = j
			}
		}
	}

	var kept []Candidate
	for key, bi := range binIdx {
		b := binList[bi]
		if b.cand.Coverage < threshold {
			continue
		}
		kept = append(kept, b.cand)
		if prev, ok := g.bins[key]; !ok || b.cand.Coverage > prev.Coverage {
			cc := b.cand
			g.bins[key] = &cc
		}
	}
	return kept
}

func (g *refGenerator) results() []Candidate {
	out := make([]Candidate, 0, len(g.bins))
	for _, c := range g.bins {
		if template.IsPeriodicStack(c.Template) {
			continue
		}
		out = append(out, *c)
	}
	sortCandidates(out)
	if len(out) > g.cfg.MaxCandidates {
		out = out[:g.cfg.MaxCandidates]
	}
	return out
}

// rawKey builds a cheap pre-reduction key for a token run: 0x01 for
// fields, the character for literals.
func rawKey(toks []*template.Node) string {
	var b strings.Builder
	b.Grow(len(toks))
	for _, t := range toks {
		if t.Kind == template.KField {
			b.WriteByte(0x01)
		} else {
			b.WriteString(t.Lit)
		}
	}
	return b.String()
}
