package generation

import (
	"fmt"
	"strings"
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func linesOf(s string) *textio.Lines { return textio.NewLines([]byte(s)) }

// findTemplate reports whether cands contains a template equal to want.
func findTemplate(cands []Candidate, want *template.Node) bool {
	for _, c := range cands {
		if c.Template.Equal(want) {
			return true
		}
	}
	return false
}

func csvData(rows int) string {
	var b strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", i, i*2, i*3)
	}
	return b.String()
}

func TestGenerateFindsCSVTemplate(t *testing.T) {
	cands := Generate(linesOf(csvData(100)), Config{})
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	want := template.Array([]*template.Node{template.Field()}, ',', '\n')
	if !findTemplate(cands, want) {
		t.Fatalf("minimal CSV template (F,)*F\\n not among %d candidates; first: %v",
			len(cands), cands[0].Template)
	}
}

func TestGenerateCoverageThreshold(t *testing.T) {
	// A template type covering only 2% of the data must be dropped at
	// α=10%.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i)
	}
	b.WriteString("rare|line\nrare|x\n")
	cands := Generate(linesOf(b.String()), Config{Alpha: 0.10})
	rare := template.Struct(template.Field(), template.Lit("|"), template.Field(), template.Lit("\n")).Normalize()
	if findTemplate(cands, rare) {
		t.Fatal("sub-threshold template survived generation")
	}
}

func TestGenerateMultiLineTemplate(t *testing.T) {
	// Three-line records: the full multi-line template must appear.
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "BEGIN %d\nvalue=%d\nEND\n", i, i*7)
	}
	cands := Generate(linesOf(b.String()), Config{})
	// Only special characters can be literals (Assumption 2), so the
	// 3-line record template shape is: a spaced line, an '='-keyed
	// line, and a bare line — three newlines, containing '='.
	found := false
	for _, c := range cands {
		s := c.Template.String()
		if strings.Count(s, `\n`) == 3 && strings.Contains(s, "=") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("multi-line template not generated; top candidate: %v", cands[0].Template)
	}
}

func TestGenerateSubTemplatesAlsoAppear(t *testing.T) {
	// Figure 11 source 1: subsets of a multi-line template are also
	// generated (to be pruned later by assimilation).
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "BEGIN %d\nvalue=%d\nEND\n", i, i*7)
	}
	cands := Generate(linesOf(b.String()), Config{MaxCandidates: 100000})
	sub := 0
	for _, c := range cands {
		if !strings.Contains(c.Template.String(), "BEGIN") {
			sub++
		}
	}
	if sub == 0 {
		t.Fatal("expected redundant sub-templates among candidates")
	}
}

func TestGenerateAssimilationRanksTrueTemplateFirst(t *testing.T) {
	// For a clean multi-line dataset the full template has the highest
	// assimilation score (condition (a) of Theorem 4.1).
	var b strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "[%02d:%02d] addr=%d.%d\nstatus: %s\n", i%24, i%60, i%256, i%256,
			[]string{"ok", "fail"}[i%2])
	}
	cands := Generate(linesOf(b.String()), Config{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0].Template.String()
	if strings.Count(top, `\n`) != 2 || !strings.Contains(top, "=") || !strings.Contains(top, ":") {
		t.Fatalf("top candidate %q is not the full two-line template", top)
	}
}

func TestGenerateRespectsMaxSpan(t *testing.T) {
	// Records span 4 lines; with MaxSpan=2 the full template cannot be
	// generated (the paper's "long records" failure cause).
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "A %d\nB %d\nC %d\nD %d\n", i, i, i, i)
	}
	cands := Generate(linesOf(b.String()), Config{MaxSpan: 2, MaxCandidates: 100000})
	for _, c := range cands {
		s := c.Template.String()
		if strings.Contains(s, "A ") && strings.Contains(s, "C ") {
			t.Fatalf("template %q spans more than MaxSpan lines", s)
		}
	}
}

func TestGenerateEmptyData(t *testing.T) {
	if got := Generate(linesOf(""), Config{}); len(got) != 0 {
		t.Fatalf("empty data produced %d candidates", len(got))
	}
}

func TestGenerateNoFieldTemplatesExcluded(t *testing.T) {
	// Lines made purely of special characters yield templates with no
	// fields, which are not valid record templates (Definition 2.1).
	data := strings.Repeat("----\n", 100)
	cands := Generate(linesOf(data), Config{})
	for _, c := range cands {
		if c.Template.NumFields() == 0 {
			t.Fatalf("zero-field template %v generated", c.Template)
		}
	}
}

func TestGreedyFindsCSVTemplate(t *testing.T) {
	cands := Generate(linesOf(csvData(100)), Config{Search: Greedy})
	want := template.Array([]*template.Node{template.Field()}, ',', '\n')
	if !findTemplate(cands, want) {
		t.Fatal("greedy search missed the CSV template")
	}
}

func TestGreedyTriesFewerCharsets(t *testing.T) {
	// With c present special characters, exhaustive tries 2^c charsets
	// and greedy at most ~c²+1.
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "[%d:%d] (%d,%d) a=%d\n", i, i, i, i, i)
	}
	lines := linesOf(b.String())
	ex := CharsetsTried(lines, Config{Search: Exhaustive})
	gr := CharsetsTried(lines, Config{Search: Greedy})
	// Present specials: [ ] : ( ) , = space → 8 chars → 256 subsets.
	if ex != 256 {
		t.Fatalf("exhaustive tried %d charsets, want 256", ex)
	}
	if gr >= ex {
		t.Fatalf("greedy tried %d charsets, not fewer than exhaustive %d", gr, ex)
	}
}

func TestPruneKeepsTopM(t *testing.T) {
	cands := []Candidate{
		{Template: template.Field(), Coverage: 100, FieldBytes: 90},
		{Template: template.Field(), Coverage: 1000, FieldBytes: 500},
		{Template: template.Field(), Coverage: 500, FieldBytes: 100},
	}
	out := Prune(cands, 2)
	if len(out) != 2 {
		t.Fatalf("Prune kept %d, want 2", len(out))
	}
	if out[0].Coverage != 1000 && out[0].Coverage != 500 {
		t.Fatalf("wrong order after prune: %+v", out)
	}
	if out[0].Assimilation() < out[1].Assimilation() {
		t.Fatal("Prune output not sorted by assimilation")
	}
}

func TestPruneZeroMeansAll(t *testing.T) {
	cands := []Candidate{
		{Template: template.Field(), Coverage: 10, FieldBytes: 5},
		{Template: template.Field(), Coverage: 20, FieldBytes: 5},
	}
	if got := Prune(cands, 0); len(got) != 2 {
		t.Fatalf("Prune(0) dropped candidates: %d", len(got))
	}
}

func TestGenerateAlphaSweepMonotone(t *testing.T) {
	// Raising α can only shrink the candidate set.
	data := csvData(50) + strings.Repeat("x|y|z\n", 20)
	prev := -1
	for _, alpha := range []float64{0.05, 0.10, 0.20, 0.40} {
		n := len(Generate(linesOf(data), Config{Alpha: alpha, MaxCandidates: 100000}))
		if prev >= 0 && n > prev {
			t.Fatalf("alpha=%v produced %d candidates, more than smaller alpha's %d", alpha, n, prev)
		}
		prev = n
	}
}

func TestGenerateInterleavedTypes(t *testing.T) {
	// Two record types interleaved (Example 2 of the paper): both
	// templates must be among the candidates.
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "GET /page/%d 200\n", i)
		if i%2 == 0 {
			fmt.Fprintf(&b, "ERR code=%d msg=%s\n", i, []string{"timeout", "refused"}[i%2/1%2])
		}
	}
	cands := Generate(linesOf(b.String()), Config{MaxCandidates: 100000})
	// Type A lines contain '/', type B lines contain '='; both shapes
	// must survive as single-line candidates.
	var hasGet, hasErr bool
	for _, c := range cands {
		s := c.Template.String()
		if strings.Count(s, `\n`) != 1 {
			continue
		}
		if strings.Contains(s, "/") {
			hasGet = true
		}
		if strings.Contains(s, "=") {
			hasErr = true
		}
	}
	if !hasGet || !hasErr {
		t.Fatalf("interleaved templates missing: GET=%v ERR=%v", hasGet, hasErr)
	}
}

func TestCandidateAssimilation(t *testing.T) {
	c := Candidate{Coverage: 100, FieldBytes: 40}
	if got := c.Assimilation(); got != 6000 {
		t.Fatalf("Assimilation = %v, want 6000", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	data := csvData(60)
	a := Generate(linesOf(data), Config{})
	b := Generate(linesOf(data), Config{})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic candidate count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Template.Equal(b[i].Template) {
			t.Fatalf("non-deterministic order at %d", i)
		}
	}
}

func TestCharsetCapRestrictsExhaustive(t *testing.T) {
	// 10 distinct specials with MaxExhaustive 4 → at most 16 charsets.
	var b strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "a,b;c:d|e[f]g{h}i=%d.\n", i)
	}
	n := CharsetsTried(linesOf(b.String()), Config{MaxExhaustive: 4})
	if n != 16 {
		t.Fatalf("tried %d charsets, want 16", n)
	}
}
