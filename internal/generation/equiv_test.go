package generation_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"datamaran/internal/chars"
	"datamaran/internal/datagen"
	"datamaran/internal/generation"
	"datamaran/internal/textio"
)

// This file pins the shape-interned engine to the reference engine in
// reference.go: over the datagen corpus and the fixture lake, at greedy
// and exhaustive search and MaxSpan 1/4/10, Generate must return the
// exact candidate list generateReference returns — same templates, same
// order, same Coverage and FieldBytes. This is the property that lets the
// generation hot path keep changing safely (the PR 3 pattern: the oracle
// stays frozen, the engine moves).

// equivGenInputs gathers the sweep corpus. Each input costs
// 6 configs × 2 engines, and the reference engine re-reduces every window
// from scratch, so coverage is budgeted: the full run sweeps a broad
// stride over the 100-dataset corpus, -short keeps one dataset per corpus
// stripe and one lake file per format, and the race build trims to a
// minimal cross-section (the engine is single-goroutine; race coverage
// only has to exercise the property end to end).
func equivGenInputs(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	stride := 12
	if testing.Short() {
		stride = 33
	}
	if generation.RaceEnabled {
		stride = 99
	}
	for i, d := range datagen.GitHubCorpus(42) {
		if i%stride != 0 {
			continue
		}
		out[fmt.Sprintf("corpus/%02d-%s", i, d.Name)] = d.Data
	}
	lakeOnly := ""
	if testing.Short() {
		lakeOnly = "-1."
	}
	if generation.RaceEnabled {
		lakeOnly = "requests-1."
	}
	err := filepath.Walk("../../testdata/lake", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if lakeOnly != "" && !strings.Contains(path, lakeOnly) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = data
		return nil
	})
	if err != nil {
		t.Fatalf("walk testdata/lake: %v", err)
	}
	return out
}

func sortedInputNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// equivConfigs is the config sweep of the oracle suite: both search modes
// at single-line, mid, and default record spans.
func equivConfigs() []generation.Config {
	var out []generation.Config
	for _, search := range []generation.SearchMode{generation.Greedy, generation.Exhaustive} {
		for _, span := range []int{1, 4, 10} {
			out = append(out, generation.Config{Search: search, MaxSpan: span})
		}
	}
	return out
}

func diffCandidates(t *testing.T, name string, cfg generation.Config, got, want []generation.Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %v span=%d: %d candidates, reference %d",
			name, cfg.Search, cfg.MaxSpan, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !g.Template.Equal(w.Template) {
			t.Fatalf("%s %v span=%d: candidate %d template %v, reference %v",
				name, cfg.Search, cfg.MaxSpan, i, g.Template, w.Template)
		}
		if !g.CharSet.Equal(w.CharSet) {
			t.Fatalf("%s %v span=%d: candidate %d charset %v, reference %v",
				name, cfg.Search, cfg.MaxSpan, i, g.CharSet, w.CharSet)
		}
		if g.Coverage != w.Coverage || g.FieldBytes != w.FieldBytes {
			t.Fatalf("%s %v span=%d: candidate %d coverage/fieldbytes %d/%d, reference %d/%d",
				name, cfg.Search, cfg.MaxSpan, i, g.Coverage, g.FieldBytes, w.Coverage, w.FieldBytes)
		}
	}
}

func TestGenerateMatchesReferenceOnCorpus(t *testing.T) {
	inputs := equivGenInputs(t)
	for _, name := range sortedInputNames(inputs) {
		data := inputs[name]
		lines := textio.NewLines(data)
		for _, cfg := range equivConfigs() {
			got := generation.Generate(lines, cfg)
			want := generation.GenerateReference(lines, cfg)
			diffCandidates(t, name, cfg, got, want)
		}
	}
}

// TestGenerateMatchesReferenceEdgeInputs covers the shapes the corpus
// sweep cannot: empty data, data without a trailing newline, blank lines,
// a single unterminated line of specials, and records longer than
// MaxRecordBytes.
func TestGenerateMatchesReferenceEdgeInputs(t *testing.T) {
	inputs := map[string]string{
		"empty":            "",
		"no-newline":       "a,b,c",
		"trailing-partial": "a,b\nc,d\ne,",
		"blank-lines":      "a,b\n\n\nc,d\n\n",
		"specials-only":    "-,-\n::\n-,-\n::\n",
		"one-byte":         "x",
		"newline-only":     "\n\n\n",
	}
	cfgs := append(equivConfigs(), generation.Config{MaxRecordBytes: 4}, generation.Config{Search: generation.Greedy, MaxRecordBytes: 4})
	for name, data := range inputs {
		lines := textio.NewLines([]byte(data))
		for _, cfg := range cfgs {
			got := generation.Generate(lines, cfg)
			want := generation.GenerateReference(lines, cfg)
			diffCandidates(t, name, cfg, got, want)
		}
	}
}

// TestGenerateFieldMarkByteInInput pins the candidate-set normalization:
// byte 0x01 is the engine's internal field-run mark and is stripped from
// any candidate set, so data containing 0x01 treats it as field content —
// identically in both engines — even when a pathological config lists it
// as a formatting character.
func TestGenerateFieldMarkByteInInput(t *testing.T) {
	data := []byte("a\x01b,c\nd\x01e,f\n\x01,\x01\n")
	var cands chars.Set
	cands.Add(0x01)
	cands.Add(',')
	lines := textio.NewLines(data)
	for _, cfg := range []generation.Config{
		{Candidates: cands},
		{Candidates: cands, Search: generation.Greedy},
		{},
	} {
		got := generation.Generate(lines, cfg)
		want := generation.GenerateReference(lines, cfg)
		diffCandidates(t, "field-mark-byte", cfg, got, want)
		for _, c := range got {
			if c.CharSet.Contains(0x01) || c.Template.RTCharSet().Contains(0x01) {
				t.Fatalf("0x01 leaked into a charset/template: %v under %v", c.Template, c.CharSet)
			}
		}
	}
}

// TestCharsetsTriedMatchesGenerateDriver pins the satellite fix: the
// complexity experiment drives the same search code as Generate, so the
// counts it reports are those of the real path by construction. The
// equivalence here is with the reference engine's enumeration behavior:
// greedy must stop the same round, exhaustive must enumerate the same
// subset count.
func TestCharsetsTriedMatchesGenerateDriver(t *testing.T) {
	inputs := equivGenInputs(t)
	names := sortedInputNames(inputs)
	if len(names) > 3 {
		names = names[:3]
	}
	for _, name := range names {
		lines := textio.NewLines(inputs[name])
		for _, search := range []generation.SearchMode{generation.Greedy, generation.Exhaustive} {
			n1 := generation.CharsetsTried(lines, generation.Config{Search: search})
			n2 := generation.CharsetsTried(lines, generation.Config{Search: search})
			if n1 != n2 {
				t.Fatalf("%s %v: CharsetsTried not deterministic: %d vs %d", name, search, n1, n2)
			}
			if n1 <= 0 {
				t.Fatalf("%s %v: CharsetsTried = %d", name, search, n1)
			}
		}
	}
}
