package generation_test

import (
	"testing"

	"datamaran/internal/datagen"
	"datamaran/internal/generation"
	"datamaran/internal/textio"
)

// benchLines is the generation benchmark input: the 16 MiB web-server-log
// corpus of BENCH_extract.json, cut down to the 512 KiB sample the
// discovery pipeline actually hands the generation step (core's
// SampleBudget). Throughput numbers are MiB/s over the sample.
func benchLines(b *testing.B) *textio.Lines {
	b.Helper()
	block := datagen.WebServerLog(4000, 7).Data
	data := make([]byte, 0, 16<<20)
	for len(data) < 16<<20 {
		data = append(data, block...)
	}
	sampler := textio.Sampler{Budget: 512 << 10, Seed: 7}
	return textio.NewLines(sampler.Sample(data))
}

func BenchmarkGeneration(b *testing.B) {
	lines := benchLines(b)
	b.SetBytes(int64(len(lines.Data())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generation.Generate(lines, generation.Config{})
	}
}

func BenchmarkGenerationGreedy(b *testing.B) {
	lines := benchLines(b)
	b.SetBytes(int64(len(lines.Data())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generation.Generate(lines, generation.Config{Search: generation.Greedy})
	}
}

// BenchmarkGenerationReference measures the frozen pre-interning engine
// on the same input, so the speedup of the rewrite stays visible in one
// `go test -bench Generation` run.
func BenchmarkGenerationReference(b *testing.B) {
	lines := benchLines(b)
	b.SetBytes(int64(len(lines.Data())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generation.GenerateReference(lines, generation.Config{})
	}
}
