// Prometheus text exposition (format version 0.0.4) for a Registry
// snapshot. The output is deterministic — families sorted by name,
// series by label signature — so tests can pin it byte-for-byte.
package obsv

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered series in the Prometheus
// text format. Histograms expand to _bucket (cumulative, with an
// le="+Inf" terminal), _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, m := range r.Snapshot() {
		if m.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		switch m.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, m.Labels, formatValue(m.Value)); err != nil {
				return err
			}
		case "histogram":
			if err := writeHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, m Metric) error {
	h := m.Hist
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLabel(m.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, m.Labels, formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, m.Labels, h.Count)
	return err
}

// withLabel appends one more label pair to an already-rendered
// signature (used for the histogram le label, which sorts after the
// series' own labels by appending — Prometheus does not require sorted
// label order, only consistent order, and this is deterministic).
func withLabel(sig, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if sig == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(sig, "}") + "," + pair + "}"
}

// formatValue renders a float the way Prometheus clients expect:
// integers without a trailing .0, everything else in shortest form.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
