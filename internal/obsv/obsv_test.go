package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBuckets: observations land in the right fixed buckets
// (upper bounds inclusive, the Prometheus convention) and the +Inf
// bucket catches overflow.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.0001, 5, 7, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,5], (5,10], (10,+inf)
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 7 + 10 + 11 + 1000
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestHistogramQuantile: linear interpolation within a bucket, the
// +Inf bucket clamping to the largest finite bound, and NaN on empty.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	// 10 observations uniform in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// Median rank = 10 → exactly fills the first bucket → 10.0.
	if got := s.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("q50 = %g, want 10", got)
	}
	// 75th: rank 15, 5 into the second bucket of 10 → 10 + 0.5*10 = 15.
	if got := s.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("q75 = %g, want 15", got)
	}
	// Everything below the first bound interpolates from zero.
	if got := s.Quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Errorf("q25 = %g, want 5", got)
	}

	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100) // +Inf bucket
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to 2", got)
	}

	empty := newHistogram(DefBuckets).Snapshot()
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %g, want NaN", got)
	}
}

// TestCounterConcurrent: parallel increments are not lost (run under
// -race by make test-race).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	g := r.Gauge("test_inflight")
	h := r.Histogram("test_seconds", DefBuckets)
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*per)
	}
}

// TestRegistryHandlesAreStable: re-registering the same name+labels
// returns the same metric, label order does not matter, and families
// cannot change kind.
func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "route", "/x", "class", "2xx")
	b := r.Counter("reqs_total", "class", "2xx", "route", "/x")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handle aliasing broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration did not panic")
		}
	}()
	r.Gauge("reqs_total")
}

// TestWritePrometheus: deterministic rendering — sorted families,
// sorted label signatures, histogram expansion with cumulative
// buckets and +Inf terminal, escaped label values.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "route", "/v1/query").Add(3)
	r.Counter("b_total", "route", "/healthz").Add(1)
	r.Gauge("a_inflight").Set(2)
	h := r.Histogram("c_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_inflight gauge
a_inflight 2
# TYPE b_total counter
b_total{route="/healthz"} 1
b_total{route="/v1/query"} 3
# TYPE c_seconds histogram
c_seconds_bucket{le="0.1"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 5.55
c_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("render mismatch\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	// Render twice: identical bytes (determinism under map iteration).
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("two renders of the same registry differ")
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// are escaped per the text format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

// TestRenderLabelsTotalOrder: the label-pair comparator is a total
// order, so duplicate keys render in one deterministic signature no
// matter how the caller ordered the pairs — not in whatever order
// sort.Slice's unstable internals happen to leave them.
func TestRenderLabelsTotalOrder(t *testing.T) {
	want := `{k="a",k="b",k="c",z="1"}`
	perms := [][]string{
		{"k", "a", "k", "b", "k", "c", "z", "1"},
		{"k", "c", "k", "b", "z", "1", "k", "a"},
		{"z", "1", "k", "b", "k", "a", "k", "c"},
	}
	for _, kv := range perms {
		if got := renderLabels(kv); got != want {
			t.Errorf("renderLabels(%q) = %s, want %s", kv, got, want)
		}
	}
	if got := renderLabels(nil); got != "" {
		t.Errorf("renderLabels(nil) = %q, want empty", got)
	}
}

// TestNilRegistry: a nil registry hands out working detached metrics,
// so instrumented code paths never nil-check.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Error("detached counter broken")
	}
	r.Gauge("x").Set(5)
	r.Histogram("x_seconds", DefBuckets).Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	sp := StartSpan(nil)
	if sp.End() < 0 {
		t.Error("span over nil histogram broken")
	}
}

// TestSpan: End records seconds into the histogram exactly once.
func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", DefBuckets, "stage", "classify")
	sp := StartSpan(h)
	if d := sp.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if s := h.Snapshot(); s.Count != 1 {
		t.Errorf("span recorded %d observations, want 1", s.Count)
	}
	var zero Span
	if zero.End() != 0 {
		t.Error("zero span should report 0")
	}
}
