// Package obsv is datamaran's observability core: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// plus a lightweight span timer for stage tracing.
//
// The design is allocation-conscious: callers register a metric once
// (Registry.Counter / Gauge / Histogram return a stable handle for a
// given name+labels) and hot paths touch only that handle — an atomic
// add, never a map lookup or an allocation. Label sets are part of a
// metric's identity and must be bounded (routes, stages, formats —
// never file paths or query text); the serve-side cardinality guard
// test pins the full family set.
//
// A nil *Registry is valid everywhere: it hands out detached metrics
// that record into nowhere, so instrumented code never nil-checks.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a signed instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: upper bounds are set at
// registration and never change, so Observe is a binary search plus
// two atomic adds.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets is the default latency bucket layout, in seconds.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is Counts[len(Bounds)]
	Counts []uint64  // per-bucket (not cumulative)
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the usual Prometheus-style estimate.
// The lowest bucket interpolates from zero; the +Inf bucket returns
// the highest finite bound. Returns NaN on an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				// +Inf bucket: the best available estimate is the
				// largest finite bound.
				if len(s.Bounds) == 0 {
					return math.Inf(1)
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			inBucket := float64(c)
			before := float64(cum - c)
			frac := (rank - before) / inBucket
			return lo + (hi-lo)*frac
		}
	}
	if len(s.Bounds) == 0 {
		return math.Inf(1)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered series: a family name, a rendered label
// signature, and exactly one live metric.
type entry struct {
	name   string
	labels string // rendered {k="v",...} or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered metrics and renders snapshots. The zero
// value is not usable; call NewRegistry. A nil *Registry hands out
// detached metrics (see package comment).
type Registry struct {
	mu      sync.Mutex
	series  map[string]*entry     // name + labels -> series
	kinds   map[string]metricKind // family name -> kind, guards cross-kind reuse
	buckets map[string][]float64  // family name -> bucket layout (histograms)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:  map[string]*entry{},
		kinds:   map[string]metricKind{},
		buckets: map[string][]float64{},
	}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry.
func Default() *Registry { return defaultRegistry }

// renderLabels turns ("k1", "v1", "k2", "v2") into a deterministic
// `{k1="v1",k2="v2"}` signature with keys sorted and values escaped.
// Panics on an odd-length pair list — a programmer error, caught by
// any test exercising the call site.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obsv: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	// The comparator must be a total order: with duplicate keys (legal —
	// the rendered signature just repeats the key), sorting on the key
	// alone would let sort.Slice's unstable internals pick the value
	// order, and the same counter could split across two signatures
	// between Go releases.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].v < pairs[j].v
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lookup finds or creates the series for name+labels, enforcing that a
// family never changes kind.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *entry {
	sig := renderLabels(labels)
	key := name + sig
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.series[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obsv: metric %s re-registered as a different kind", key))
		}
		return e
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obsv: metric family %s re-registered as a different kind", name))
	}
	e := &entry{name: name, labels: sig, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		if b, ok := r.buckets[name]; ok {
			bounds = b // the first registration pins the family's layout
		}
		e.h = newHistogram(bounds)
		r.buckets[name] = e.h.bounds
	}
	r.series[key] = e
	r.kinds[name] = kind
	return e
}

// Counter returns the counter for name and the given label pairs,
// registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge for name and the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram for name and the given label pairs.
// The first registration of a family pins its bucket layout; later
// calls reuse it regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	return r.lookup(name, kindHistogram, bounds, labels).h
}

// Metric is one series in a Snapshot.
type Metric struct {
	Name   string
	Labels string // rendered {k="v",...} signature, "" when unlabeled
	Kind   string // "counter", "gauge" or "histogram"
	Value  float64
	Hist   *HistSnapshot // histograms only
}

// Snapshot returns every registered series, sorted by family name then
// label signature — the deterministic order WritePrometheus renders.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.series))
	for _, e := range r.series {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Labels: e.labels}
		switch e.kind {
		case kindCounter:
			m.Kind = "counter"
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Kind = "gauge"
			m.Value = float64(e.g.Value())
		case kindHistogram:
			m.Kind = "histogram"
			h := e.h.Snapshot()
			m.Hist = &h
		}
		out = append(out, m)
	}
	return out
}

// Span times one stage and records the elapsed seconds into a
// histogram on End. The zero Span (and a Span over a nil histogram)
// is safe: End just returns the elapsed time.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a stage; pass the histogram the duration
// should land in (typically Registry.Histogram(..., DefBuckets, ...)).
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End stops the span, records it, and returns the elapsed time.
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}
