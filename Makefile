# Datamaran build/test entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so local runs reproduce CI.

GO ?= go

.PHONY: build test test-short test-race bench lint fmt staticcheck bench-gate bench-allocs bench-serve serve-gate bench-query query-gate fuzz-smoke golden-lake golden-lake-update golden-query golden-query-update serve-smoke serve-smoke-update

build:
	$(GO) build ./...

# The full suite regenerates the paper experiments and takes several
# minutes; CI and quick local iteration use test-short.
test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race job over the concurrent packages (parser fan-out, streaming
# pipeline, chunk reader, lake crawl, incremental follow, serve daemon)
# plus the generation/template hot path (single-goroutine, but its oracle
# equivalence suite must also hold under the race runtime's different
# allocation and scheduling behavior) and the query engine (its
# join-order property suite must hold under the race runtime too).
test-race:
	$(GO) test -race -short ./internal/parser ./internal/pipeline ./internal/textio ./internal/lake ./internal/follow ./internal/serve ./internal/query ./internal/obsv ./internal/generation ./internal/template .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# BENCH_extract.json: the streaming-engine benchmark report. The
# committed baseline was measured at 16 MiB; bench-gate re-measures at
# the same size and fails on a >20% workers=1 throughput regression of
# the extract-mem, gen, stream-discover or apply-profile modes, on an
# apply/extract ratio under 5x, or on any baseline mode missing from
# the fresh report. The absolute comparison is MiB/s, so keep the
# baseline's hardware matched to wherever the gate runs: refresh it
# from the CI job's bench-extract-report artifact (or rerun
# `make bench-extract` on the same machine) in the same PR whenever a
# change is intentional.
bench-extract:
	$(GO) run ./cmd/experiments -bench-extract BENCH_extract.json -bench-mb 16 \
		-cpuprofile BENCH_extract.cpu.pprof

bench-gate:
	$(GO) run ./cmd/experiments -bench-extract /tmp/BENCH_extract_new.json -bench-mb 16 \
		-bench-baseline BENCH_extract.json \
		-cpuprofile /tmp/BENCH_extract_new.cpu.pprof

# BENCH_serve.json: the serving-path load benchmark (daemon over
# loopback HTTP; extract + query QPS and latency percentiles at 1/4/16
# in-flight clients). serve-gate re-measures and fails on a >20% QPS
# drop or a >50% p99 growth in any (mode, in-flight) cell, or on any
# baseline cell missing from the fresh report. Like the extract gate,
# the comparison is absolute — refresh the baseline from the CI job's
# bench-serve-report artifact (or rerun `make bench-serve` on the same
# machine) in the same PR whenever a change is intentional.
bench-serve:
	$(GO) run ./cmd/experiments -bench-serve BENCH_serve.json \
		-cpuprofile BENCH_serve.cpu.pprof

serve-gate:
	$(GO) run ./cmd/experiments -bench-serve /tmp/BENCH_serve_new.json \
		-bench-serve-baseline BENCH_serve.json \
		-cpuprofile /tmp/BENCH_serve_new.cpu.pprof

# BENCH_query.json: the query-engine benchmark (fixture lake amplified
# x200, crawled + compacted, store pinned open; QPS per query shape).
# query-gate re-measures and fails on a >20% QPS drop in any mode, on a
# baseline mode missing from the fresh report, or on the pushdown win —
# selective-scan over the same query with pushdown disabled — falling
# under 3x. The ratio floor is hardware-independent; the absolute QPS
# comparison is not, so refresh the baseline from the CI job's
# bench-query-report artifact (or rerun `make bench-query` on the same
# machine) in the same PR whenever a change is intentional.
bench-query:
	$(GO) run ./cmd/experiments -bench-query BENCH_query.json

query-gate:
	$(GO) run ./cmd/experiments -bench-query /tmp/BENCH_query_new.json \
		-bench-query-baseline BENCH_query.json

# Allocation gate: the parser's steady-state scan benchmarks and the
# generation engine's warm genST benchmark must stay at 0 allocs/op
# (noise rejection, arena-reuse scanning and transition-table window
# accumulation never touch the heap — see scripts/bench_allocs.sh).
bench-allocs:
	sh scripts/bench_allocs.sh

# Fuzz smoke: run each native fuzz target briefly so CI exercises the
# generation-engine oracle (FuzzGenerate pins the shape-interned engine
# to the reference) and the reduction invariants (FuzzReduce) on
# fuzzer-mutated inputs, not just the committed corpora.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzGenerate$$' -fuzztime 10s ./internal/generation
	$(GO) test -run '^$$' -fuzz '^FuzzReduce$$' -fuzztime 10s ./internal/template

# Golden-corpus check: the fixture lake must index byte-identically to
# the committed outputs (see scripts/golden_lake.sh).
golden-lake:
	sh scripts/golden_lake.sh

golden-lake-update:
	sh scripts/golden_lake.sh -update

# Golden-query check: the query suite over the fixture lake's record
# store must reproduce the committed results byte-for-byte through the
# CLI at two crawl worker counts (see scripts/golden_query.sh; the
# in-process engine and the served /v1/query are pinned to the same
# goldens by TestQueryGoldens and serve-smoke).
golden-query:
	sh scripts/golden_query.sh

golden-query-update:
	sh scripts/golden_query.sh -update

# Serve-daemon smoke: start `datamaran serve` on the fixture lake, hit
# the /v1 routes (formats, both extract paths, reindex, one query) plus
# a deprecated alias and a failing route, and diff every response
# against testdata/lake_golden (see scripts/serve_smoke.sh).
serve-smoke:
	sh scripts/serve_smoke.sh

serve-smoke-update:
	sh scripts/serve_smoke.sh -update

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it); the target fails
# only on findings, not on a missing binary.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

fmt:
	gofmt -w .
