# Datamaran build/test entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so local runs reproduce CI.

GO ?= go

.PHONY: build test test-short test-race bench lint fmt

build:
	$(GO) build ./...

# The full suite regenerates the paper experiments and takes several
# minutes; CI and quick local iteration use test-short.
test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race job over the concurrent packages (parser fan-out, streaming
# pipeline, chunk reader).
test-race:
	$(GO) test -race -short ./internal/parser ./internal/pipeline ./internal/textio .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# BENCH_extract.json: the streaming-engine benchmark report.
bench-extract:
	$(GO) run ./cmd/experiments -bench-extract BENCH_extract.json

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .
