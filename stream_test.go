package datamaran

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"datamaran/internal/datagen"
)

// TestExtractReaderMatchesExtract checks the public streaming API against
// the in-memory one, forcing many small shards through the engine.
func TestExtractReaderMatchesExtract(t *testing.T) {
	datasets := []*datagen.Dataset{
		datagen.WebServerLog(400, 7),
		datagen.InterleavedTypes(2, 120, 9),
		datagen.ThailandDistricts(40, 3),
	}
	for _, d := range datasets {
		want, err := Extract(d.Data, Options{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		got, err := ExtractReader(bytes.NewReader(d.Data), Options{ShardSize: 512, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !reflect.DeepEqual(got.Structures, want.Structures) {
			t.Errorf("%s: structures differ:\n got %+v\nwant %+v", d.Name, got.Structures, want.Structures)
		}
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Errorf("%s: records differ (%d vs %d)", d.Name, len(got.Records), len(want.Records))
		}
		if !reflect.DeepEqual(got.NoiseLines, want.NoiseLines) {
			t.Errorf("%s: noise lines differ", d.Name)
		}
	}
}

// TestStreamedTablesMatchInMemory checks the buffer-free table builders
// produce the same CSV tables as the parse-tree path.
func TestStreamedTablesMatchInMemory(t *testing.T) {
	d := datagen.WebServerLog(300, 7)
	want, err := Extract(d.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractReader(bytes.NewReader(d.Data), Options{ShardSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	compare := func(name string, a, b []*Table) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d tables vs %d", name, len(b), len(a))
		}
		for i := range a {
			var wb, gb bytes.Buffer
			if err := a[i].WriteCSV(&wb); err != nil {
				t.Fatal(err)
			}
			if err := b[i].WriteCSV(&gb); err != nil {
				t.Fatal(err)
			}
			if wb.String() != gb.String() {
				t.Errorf("%s table %d (%s) differs", name, i, a[i].Name)
			}
		}
	}
	compare("normalized", want.Tables(), got.Tables())
	compare("denormalized", want.DenormalizedTables(), got.DenormalizedTables())
	compare("typed", want.TypedTables(), got.TypedTables())
}

// TestExtractStreamYieldsRecords checks the constant-memory public mode.
func TestExtractStreamYieldsRecords(t *testing.T) {
	d := datagen.CommaSepRecords(300, 3)
	want, err := Extract(d.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	res, err := ExtractStream(bytes.NewReader(d.Data), Options{ShardSize: 512}, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("Result.Records = %d, want 0", len(res.Records))
	}
	if !reflect.DeepEqual(got, want.Records) {
		t.Fatalf("streamed records differ (%d vs %d)", len(got), len(want.Records))
	}
	if !reflect.DeepEqual(res.Structures, want.Structures) {
		t.Errorf("structures differ")
	}
}

// TestExtractReaderWithProfileMatches checks the single-pass profile
// application over a stream against the in-memory form.
func TestExtractReaderWithProfileMatches(t *testing.T) {
	d := datagen.WebServerLog(500, 7)
	learned, err := Extract(d.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := learned.Profile()
	sibling := datagen.WebServerLog(700, 13)
	want, err := ExtractWithProfile(sibling.Data, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractReaderWithProfile(bytes.NewReader(sibling.Data), p, Options{ShardSize: 2048, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Structures, want.Structures) {
		t.Errorf("structures differ:\n got %+v\nwant %+v", got.Structures, want.Structures)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Errorf("records differ (%d vs %d)", len(got.Records), len(want.Records))
	}
	if !reflect.DeepEqual(got.NoiseLines, want.NoiseLines) {
		t.Errorf("noise differs")
	}

	if _, err := ExtractReaderWithProfile(bytes.NewReader(sibling.Data), nil, Options{}); err == nil {
		t.Error("nil profile: expected error")
	}
}

// TestExtractStreamMultiLineFlag pins the callback-mode MultiLine
// reconstruction: with Records not materialized, the flag must still be
// derived from the records streaming past.
func TestExtractStreamMultiLineFlag(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "BEGIN %d\nvalue= %d\nEND;\n", i, i*3)
	}
	res, err := ExtractStream(bytes.NewReader(b.Bytes()), Options{ShardSize: 256},
		func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("no structures")
	}
	if !res.Structures[0].MultiLine {
		t.Errorf("MultiLine = false for a multi-line record type: %+v", res.Structures[0])
	}
}
