// Datalake: navigate a directory tree of heterogeneous log files — the
// paper's headline scenario. Many files share a handful of formats, so
// structure should be discovered once per format and reused everywhere:
// IndexDir samples each new file, matches it against the profile
// registry, and only the first file of a format pays for discovery;
// every sibling runs the one-pass profile-apply fast path. A second
// crawl with the persisted registry discovers nothing at all.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"datamaran"
	"datamaran/internal/lake/laketest"
)

// buildLake writes a small lake: three formats spread over nine files
// plus one unstructured notes file. The formats come from the shared
// laketest corpus; one rng per file index feeds all three formats, so
// the bytes are a pure function of the file index.
func buildLake(root string) error {
	verbs := []string{"GET", "PUT", "POST"}
	states := []string{"DONE", "FAILED"}
	write := func(rel, content string) error {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return err
		}
		return os.WriteFile(p, []byte(content), 0o644)
	}
	for f := 1; f <= 3; f++ {
		rng := rand.New(rand.NewSource(int64(f)))
		var jobs, reqs, metrics strings.Builder
		for i := 0; i < 80; i++ {
			laketest.AppendJob(&jobs, rng, 100000, 5, states)
			laketest.AppendRequest(&reqs, rng, verbs, 10000, []int{200, 404, 500})
			laketest.AppendMetric(&metrics, rng)
		}
		if err := write(fmt.Sprintf("scheduler/jobs-%d.log", f), jobs.String()); err != nil {
			return err
		}
		if err := write(fmt.Sprintf("edge/requests-%d.log", f), reqs.String()); err != nil {
			return err
		}
		if err := write(fmt.Sprintf("telemetry/metrics-%d.log", f), metrics.String()); err != nil {
			return err
		}
	}
	return write("NOTES.txt", laketest.Prose("telemetry",
		"scheduler/ holds the job dumps -- multi-line, one stanza per job",
		"edge/ is the request tier; status codes are plain integers"))
}

func main() {
	root, err := os.MkdirTemp("", "datalake-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	if err := buildLake(root); err != nil {
		log.Fatal(err)
	}
	registry := filepath.Join(root, ".registry.json")

	opts := datamaran.IndexOptions{RegistryPath: registry}
	res, err := datamaran.IndexDir(root, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("first crawl: %d files, %d formats discovered, %d cache hits\n",
		res.Summary.Files, res.Summary.FormatsDiscovered, res.Summary.CacheHits)
	for _, f := range res.Formats {
		fmt.Printf("  format %s (%d files):\n", f.Fingerprint, f.Files)
		for i, tpl := range f.Templates {
			fmt.Printf("    type %d: %s\n", i, tpl)
		}
	}
	for _, f := range res.Files {
		switch {
		case f.Unstructured:
			fmt.Printf("  %-26s unstructured\n", f.Path)
		case f.Err != nil:
			fmt.Printf("  %-26s failed: %v\n", f.Path, f.Err)
		default:
			how := "cached profile"
			if f.Discovered {
				how = "full discovery"
			}
			fmt.Printf("  %-26s %d records via %s\n", f.Path, len(f.Result.Records), how)
		}
	}

	// The registry persisted: a second crawl discovers nothing.
	res2, err := datamaran.IndexDir(root, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second crawl: %d formats discovered, %d cache hits (registry reused)\n",
		res2.Summary.FormatsDiscovered, res2.Summary.CacheHits)

	// Every format's profile is a first-class Profile, usable with the
	// ExtractWithProfile family on files that never went through IndexDir.
	if len(res.Formats) == 0 {
		log.Fatal("no formats discovered")
	}
	p := res.Formats[0].Profile()
	fmt.Printf("profile %s round-trips through the registry and the streaming API\n", p.Fingerprint())
}
