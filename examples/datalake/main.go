// Datalake: tease apart multiple interleaved record types from one file —
// the scenario of Figure 2 of the paper (record types A and B randomly
// interleaved, so no boundary rule can chunk the file up front) — and
// write one relational table per type.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"datamaran"
)

func buildLake() []byte {
	rng := rand.New(rand.NewSource(3))
	verbs := []string{"GET", "PUT", "POST"}
	var b strings.Builder
	for i := 0; i < 200; i++ {
		switch rng.Intn(3) {
		case 0: // 3-line job records
			fmt.Fprintf(&b, "JOB <%d>\n  queue= q%d;\n  state= %s;\n",
				rng.Intn(100000), rng.Intn(5), []string{"DONE", "FAILED"}[rng.Intn(2)])
		case 1: // request lines
			fmt.Fprintf(&b, "%s /api/v%d/item %d\n", verbs[rng.Intn(3)], 1+rng.Intn(2), []int{200, 404, 500}[rng.Intn(3)])
		case 2: // metric lines
			fmt.Fprintf(&b, "metric|cpu%d|%d.%02d|\n", rng.Intn(8), rng.Intn(100), rng.Intn(100))
		}
	}
	return []byte(b.String())
}

func main() {
	res, err := datamaran.Extract(buildLake(), datamaran.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("record types discovered: %d\n", len(res.Structures))
	for _, s := range res.Structures {
		fmt.Printf("  type %d: %-40s %4d records (multi-line=%v)\n",
			s.Type, s.Template, s.Records, s.MultiLine)
	}

	counts := map[int]int{}
	for _, r := range res.Records {
		counts[r.Type]++
	}
	fmt.Printf("\nper-type record counts: %v\n", counts)
	fmt.Printf("noise lines: %d\n", len(res.NoiseLines))

	for _, t := range res.DenormalizedTables() {
		fmt.Printf("\ntable %s: %d columns × %d rows\n", t.Name, len(t.Columns), len(t.Rows))
	}
}
