// Serverlog: extract multi-line records interleaved with noise — the
// scenario of Figure 1 of the paper, where line-by-line tools lose the
// association between the lines of one record.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"datamaran"
)

func buildLog() []byte {
	rng := rand.New(rand.NewSource(7))
	hosts := []string{"web1", "web2", "db1", "cache1"}
	var b strings.Builder
	for i := 0; i < 120; i++ {
		if rng.Intn(9) == 0 {
			b.WriteString("!!! watchdog heartbeat skipped !!!\n")
		}
		fmt.Fprintf(&b, "--- request %06d ---\n", rng.Intn(1000000))
		fmt.Fprintf(&b, "host: %s\n", hosts[rng.Intn(len(hosts))])
		fmt.Fprintf(&b, "latency= %d.%03d ms\n", rng.Intn(900), rng.Intn(1000))
		fmt.Fprintf(&b, "status= %d;\n", []int{200, 200, 404, 500}[rng.Intn(4)])
	}
	return []byte(b.String())
}

func main() {
	res, err := datamaran.Extract(buildLog(), datamaran.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range res.Structures {
		fmt.Printf("template (%d records, multi-line=%v):\n  %s\n", s.Records, s.MultiLine, s.Template)
	}
	fmt.Printf("noise lines skipped: %d\n", len(res.NoiseLines))

	// Each 4-line request is one record: the line association that
	// line-by-line extraction destroys is preserved.
	fmt.Println("\nfirst three records:")
	for _, r := range res.Records[:3] {
		vals := make([]string, 0, len(r.Fields))
		for _, f := range r.Fields {
			vals = append(vals, f.Value)
		}
		fmt.Printf("  lines %d-%d: %v\n", r.StartLine, r.EndLine-1, vals)
	}
}
