// Genomics: extract 4-line fastq records — a multi-line scientific format
// from the paper's Table 5 — and compute per-record statistics from the
// extracted fields.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"datamaran"
)

func buildFastq(reads int) []byte {
	rng := rand.New(rand.NewSource(11))
	bases := "ACGT"
	qual := "ABCDEFGHIJ"
	var b strings.Builder
	for i := 0; i < reads; i++ {
		n := 24 + rng.Intn(24)
		seq := make([]byte, n)
		q := make([]byte, n)
		for j := range seq {
			seq[j] = bases[rng.Intn(4)]
			q[j] = qual[rng.Intn(10)]
		}
		fmt.Fprintf(&b, "@READ.%d len=%d\n%s\n+\n%s\n", i+1, n, seq, q)
	}
	return []byte(b.String())
}

func main() {
	res, err := datamaran.Extract(buildFastq(150), datamaran.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Structures) == 0 {
		log.Fatal("no structure found")
	}
	s := res.Structures[0]
	fmt.Printf("fastq template: %s\n", s.Template)
	fmt.Printf("reads extracted: %d (multi-line=%v)\n\n", s.Records, s.MultiLine)

	// GC content from the extracted sequence field. The sequence is the
	// longest field of each record.
	var gc, total int
	for _, r := range res.Records {
		longest := ""
		for _, f := range r.Fields {
			if len(f.Value) > len(longest) {
				longest = f.Value
			}
		}
		for _, c := range longest {
			if c == 'G' || c == 'C' {
				gc++
			}
		}
		total += len(longest)
	}
	fmt.Printf("GC content over %d extracted bases: %.1f%%\n", total, 100*float64(gc)/float64(total))
}
