// Typedcolumns: the type-awareness extension (§6.3 of the paper). Raw
// extraction splits an IP into four numeric columns and a timestamp into
// three; TypedTables reassembles them into semantic columns so no manual
// Concatenate chains are needed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"datamaran"
)

func main() {
	rng := rand.New(rand.NewSource(19))
	var b strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&b, "%d.%d.%d.%d [%02d:%02d:%02d] user%d %s\n",
			1+rng.Intn(250), rng.Intn(256), rng.Intn(256), 1+rng.Intn(250),
			rng.Intn(24), rng.Intn(60), rng.Intn(60),
			rng.Intn(40), []string{"login", "logout", "upload"}[rng.Intn(3)])
	}

	res, err := datamaran.Extract([]byte(b.String()), datamaran.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template: %s\n", res.Structures[0].Template)

	raw := res.TablesWith(datamaran.TablesOptions{Denormalized: true})[0]
	typed := res.TablesWith(datamaran.TablesOptions{Typed: true})[0]
	fmt.Printf("raw columns:   %d %v\n", len(raw.Columns), raw.Columns)
	fmt.Printf("typed columns: %d %v\n", len(typed.Columns), typed.Columns)
	fmt.Printf("first typed row: %v\n", typed.Rows[0])
}
