package datamaran

import "os"

// writeFile is a test helper kept out of datamaran_test.go so the example
// of a minimal test-support file stays tiny.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
