module datamaran

go 1.24
