package datamaran

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenQueries is the committed query suite over the fixture lake —
// the same queries scripts/golden_query.sh runs through the CLI and
// scripts/serve_smoke.sh runs through /v1/query, so the three surfaces
// are pinned byte-identical to one set of goldens. File extension picks
// the output form.
var goldenQueries = map[string]string{
	"selection.csv":     "SELECT f1, f2, f3 FROM 570eebfb5b600688 WHERE f2 > 99",
	"projection.ndjson": "SELECT f1, f6 FROM 94d88dc2a33387cc WHERE f5 = '500' LIMIT 15",
	"join.csv":          "SELECT m.f1, m.f2, h.f3, h.f5 FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 AND m.f2 > 99 ORDER BY m.f2 DESC, m.f1",
	"groupby.csv":       "SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3",
	"joingroup.ndjson":  "SELECT h.f5, count(*) FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 GROUP BY h.f5 ORDER BY h.f5",
	"topk.csv":          "SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5",
	"range.ndjson":      "SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 90 AND f2 <= 99",
}

// TestQueryGoldens: the in-process engine (the public Query entry
// point) reproduces the committed golden query results over a store
// built fresh from the fixture lake.
func TestQueryGoldens(t *testing.T) {
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(fixtureLake, IndexOptions{
		RegistryPath: filepath.Join(state, "registry.json"),
		StorePath:    storePath,
	}); err != nil {
		t.Fatal(err)
	}
	for file, text := range goldenQueries {
		want, err := os.ReadFile(filepath.Join("testdata/lake_golden/query", file))
		if err != nil {
			t.Fatalf("missing golden (run scripts/golden_query.sh -update): %v", err)
		}
		// Both with pushdown (the default) and without: DisablePushdown
		// routes through the pre-pushdown full-decode path, and the two
		// must be byte-identical on every golden.
		for _, nopush := range []bool{false, true} {
			rows, err := Query(context.Background(), text, QueryOptions{
				StorePath:       storePath,
				DisablePushdown: nopush,
			})
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			var got bytes.Buffer
			if strings.HasSuffix(file, ".csv") {
				err = rows.WriteCSV(&got)
			} else {
				err = rows.WriteNDJSON(&got)
			}
			rows.Close()
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s (nopush=%v): engine output differs from golden\ngot:\n%s\nwant:\n%s", file, nopush, &got, want)
			}
		}
	}
}

// TestQueryCancellation: a cancelled context stops a streaming query.
func TestQueryCancellation(t *testing.T) {
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(fixtureLake, IndexOptions{StorePath: storePath}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Query(ctx, "SELECT * FROM 570eebfb5b600688", QueryOptions{StorePath: storePath})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 1000; i++ {
		if _, err := rows.Next(); err != nil {
			if errors.Is(err, context.Canceled) {
				return
			}
			t.Fatalf("unexpected error: %v", err)
		}
	}
	t.Fatal("cancelled query kept producing rows")
}
