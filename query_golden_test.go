package datamaran

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// goldenQueries is the committed query suite over the fixture lake —
// the same queries scripts/golden_query.sh runs through the CLI and
// scripts/serve_smoke.sh runs through /v1/query, so the three surfaces
// are pinned byte-identical to one set of goldens. File extension picks
// the output form.
var goldenQueries = map[string]string{
	"selection.csv":     "SELECT f1, f2, f3 FROM 570eebfb5b600688 WHERE f2 > 99",
	"projection.ndjson": "SELECT f1, f6 FROM 94d88dc2a33387cc WHERE f5 = '500' LIMIT 15",
	"join.csv":          "SELECT m.f1, m.f2, h.f3, h.f5 FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 AND m.f2 > 99 ORDER BY m.f2 DESC, m.f1",
	"groupby.csv":       "SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3",
	"joingroup.ndjson":  "SELECT h.f5, count(*) FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 GROUP BY h.f5 ORDER BY h.f5",
	"topk.csv":          "SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5",
	"range.ndjson":      "SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 90 AND f2 <= 99",
}

// TestQueryGoldens: the in-process engine (the public Query entry
// point) reproduces the committed golden query results over a store
// built fresh from the fixture lake.
func TestQueryGoldens(t *testing.T) {
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(fixtureLake, IndexOptions{
		RegistryPath: filepath.Join(state, "registry.json"),
		StorePath:    storePath,
	}); err != nil {
		t.Fatal(err)
	}
	for file, text := range goldenQueries {
		want, err := os.ReadFile(filepath.Join("testdata/lake_golden/query", file))
		if err != nil {
			t.Fatalf("missing golden (run scripts/golden_query.sh -update): %v", err)
		}
		// Both with pushdown (the default) and without: DisablePushdown
		// routes through the pre-pushdown full-decode path, and the two
		// must be byte-identical on every golden.
		for _, nopush := range []bool{false, true} {
			rows, err := Query(context.Background(), text, QueryOptions{
				StorePath:       storePath,
				DisablePushdown: nopush,
			})
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			var got bytes.Buffer
			if strings.HasSuffix(file, ".csv") {
				err = rows.WriteCSV(&got)
			} else {
				err = rows.WriteNDJSON(&got)
			}
			rows.Close()
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s (nopush=%v): engine output differs from golden\ngot:\n%s\nwant:\n%s", file, nopush, &got, want)
			}
		}
	}
}

// goldenExplains pins the EXPLAIN plans of the join, group-by and
// top-k golden queries. Plan-only explain is deterministic (no
// timings), so the rendered trees are committed goldens like the query
// results — and scripts/golden_query.sh re-checks the same files
// through the CLI's -explain plan. Pushdown-only: disabling pushdown
// legitimately changes the plan (that is the point of the flag).
var goldenExplains = map[string]string{
	"explain_join.csv":    goldenQueries["join.csv"],
	"explain_groupby.csv": goldenQueries["groupby.csv"],
	"explain_topk.csv":    goldenQueries["topk.csv"],
}

// TestQueryExplainGoldens: the public Query entry point with
// Explain: "plan" reproduces the committed plan goldens.
func TestQueryExplainGoldens(t *testing.T) {
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(fixtureLake, IndexOptions{
		RegistryPath: filepath.Join(state, "registry.json"),
		StorePath:    storePath,
	}); err != nil {
		t.Fatal(err)
	}
	for file, text := range goldenExplains {
		want, err := os.ReadFile(filepath.Join("testdata/lake_golden/query", file))
		if err != nil {
			t.Fatalf("missing golden (run scripts/golden_query.sh -update): %v", err)
		}
		rows, err := Query(context.Background(), text, QueryOptions{
			StorePath: storePath,
			Explain:   "plan",
		})
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var got bytes.Buffer
		err = rows.WriteCSV(&got)
		rows.Close()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: explain plan differs from golden\ngot:\n%s\nwant:\n%s", file, &got, want)
		}
	}
}

// TestExplainAnalyzeReportsPruning: over a lake extended with a file
// whose f2 values all exceed the golden range query's upper bound, the
// zone maps prune that file's full blocks without decoding them, and
// EXPLAIN ANALYZE reports the pruning on the scan line. The extra rows
// are invisible to the predicate, so the non-explain output still
// matches the committed golden byte-for-byte.
func TestExplainAnalyzeReportsPruning(t *testing.T) {
	lakeDir := t.TempDir()
	if err := os.CopyFS(lakeDir, os.DirFS(fixtureLake)); err != nil {
		t.Fatal(err)
	}
	// 3000 rows, f2 monotonically 200.00 and up: with 1024-row blocks
	// at least two full blocks whose numeric minimum exceeds 99.
	var mono bytes.Buffer
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&mono, "metric|cpu%d|%d.00|db01|\n", i%8, 200+i)
	}
	if err := os.WriteFile(filepath.Join(lakeDir, "metrics", "metrics-mono.log"), mono.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(lakeDir, IndexOptions{
		RegistryPath: filepath.Join(state, "registry.json"),
		StorePath:    storePath,
	}); err != nil {
		t.Fatal(err)
	}

	text := goldenQueries["range.ndjson"]
	rows, err := Query(context.Background(), text, QueryOptions{StorePath: storePath, Explain: "analyze"})
	if err != nil {
		t.Fatal(err)
	}
	var analyze bytes.Buffer
	err = rows.WriteCSV(&analyze)
	rows.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`pruned=(\d+)`).FindStringSubmatch(analyze.String())
	if m == nil {
		t.Fatalf("no pruned= counter in analyze output:\n%s", &analyze)
	}
	if pruned, _ := strconv.Atoi(m[1]); pruned < 2 {
		t.Errorf("pruned=%d, want >= 2 (two full out-of-range blocks):\n%s", pruned, &analyze)
	}

	want, err := os.ReadFile("testdata/lake_golden/query/range.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Query(context.Background(), text, QueryOptions{StorePath: storePath})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	err = rows.WriteNDJSON(&got)
	rows.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("pruned query result differs from golden\ngot:\n%s\nwant:\n%s", &got, want)
	}
}

// TestQueryCancellation: a cancelled context stops a streaming query.
func TestQueryCancellation(t *testing.T) {
	state := t.TempDir()
	storePath := filepath.Join(state, "store")
	if _, err := IndexDir(fixtureLake, IndexOptions{StorePath: storePath}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Query(ctx, "SELECT * FROM 570eebfb5b600688", QueryOptions{StorePath: storePath})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 1000; i++ {
		if _, err := rows.Next(); err != nil {
			if errors.Is(err, context.Canceled) {
				return
			}
			t.Fatalf("unexpected error: %v", err)
		}
	}
	t.Fatal("cancelled query kept producing rows")
}
