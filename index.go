package datamaran

import (
	"context"

	"datamaran/internal/follow"
	"datamaran/internal/lake"
)

// IndexOptions configures IndexDir, the data-lake crawl.
type IndexOptions struct {
	// Extract holds the per-file discovery/extraction options.
	Extract Options
	// RegistryPath names the persistent profile registry (JSON). When
	// set, known formats are loaded before the crawl and the updated
	// registry is written back after it, so structure discovered by one
	// run is reused by every later run. Empty means a fresh in-memory
	// registry.
	RegistryPath string
	// Workers is the number of files extracted concurrently (0 means
	// GOMAXPROCS). The output is byte-identical for any worker count.
	Workers int
	// SampleBytes caps the per-file prefix used to classify a file
	// against known profiles and to discover new formats (0 means
	// 256 KiB).
	SampleBytes int
	// MatchThreshold is the minimum fraction of a file's sample a known
	// profile must cover to claim the file (0 means 0.5).
	MatchThreshold float64
	// CheckpointPath names the persistent per-file checkpoint store
	// (JSON) of the incremental crawl. When set, files already indexed
	// under a still-valid checkpoint skip classification and resume
	// extraction at the checkpointed offset (unchanged files skip
	// extraction entirely); rotated or truncated files fall back to a
	// full re-extraction. The store is loaded before the crawl and
	// written back after, like the registry it lives next to.
	CheckpointPath string
	// StorePath names the record-store directory where the crawl writes
	// per-format columnar segments — the tables Query reads. Segments
	// are staged during the crawl and committed only when it completes;
	// an incremental crawl extends a grown file's segments in place.
	// Empty disables the store.
	StorePath string
}

// IndexedFile is the indexing outcome of one crawled file.
type IndexedFile struct {
	// Path is the slash-separated path relative to the indexed root.
	Path string
	// Size is the file size in bytes.
	Size int64
	// Fingerprint identifies the format that claimed the file ("" when
	// the file is unstructured or failed).
	Fingerprint string
	// Discovered reports that this file went through full template
	// discovery — usually the first file of a new format, though
	// discovery can also re-derive an already-known format when the
	// file's sample missed the match threshold.
	Discovered bool
	// Unstructured reports that no record structure was found.
	Unstructured bool
	// Err is the per-file failure, nil otherwise. Indexing continues
	// past failed files.
	Err error
	// Result is the extraction result (nil for unstructured or failed
	// files). Records, noise lines and tables are exactly those of
	// ExtractReaderWithProfile with the format's profile — except for a
	// file resumed from a checkpoint (Resume == "resumed"), where it
	// covers only the region beyond the checkpoint, in whole-file
	// coordinates, and for an unchanged file (Resume == "unchanged"),
	// where it is nil.
	Result *Result
	// Resume reports the incremental handling of the file: "" outside
	// incremental crawls; otherwise "resumed", "unchanged", or — for
	// files that took the full path — the reason ("new", "rotated",
	// "truncated", "profile-gone", "grown").
	Resume string
	// PriorRecords and PriorNoise count the records and noise lines
	// finalized before the region Result covers (only set for resumed
	// files). PriorRecords + len(Result.Records) is the whole-file
	// record count.
	PriorRecords, PriorNoise int
	// TotalRecords and TotalNoise are whole-file counts maintained by
	// the incremental crawl, valid for every structured file in an
	// incremental run — including unchanged files, whose Result is nil.
	TotalRecords, TotalNoise int
}

// IndexedFormat is one format known to the registry after an IndexDir
// run.
type IndexedFormat struct {
	// Fingerprint is the format's stable identifier (see
	// Profile.Fingerprint).
	Fingerprint string
	// Templates lists the structure templates in the paper's notation.
	Templates []string
	// Files counts the files this format has claimed over the
	// registry's lifetime (across runs when the registry persists).
	Files int
	// Discovered reports that the format was first registered by this
	// run.
	Discovered bool

	profile *Profile
}

// Profile returns the format's profile, usable with the
// ExtractWithProfile family.
func (f *IndexedFormat) Profile() *Profile { return f.profile }

// IndexSummary aggregates an IndexDir run.
type IndexSummary struct {
	// Files is the number of regular files crawled.
	Files int
	// Structured counts files extracted under some format.
	Structured int
	// Unstructured counts files with no discoverable structure.
	Unstructured int
	// Failed counts files that errored.
	Failed int
	// FormatsKnown is the registry size after the run.
	FormatsKnown int
	// FormatsDiscovered counts formats first registered by this run.
	FormatsDiscovered int
	// CacheHits counts files claimed by an already-known profile —
	// files that skipped discovery entirely.
	CacheHits int
	// Resumed counts files whose extraction resumed at a checkpoint
	// (incremental crawls only).
	Resumed int
	// Unchanged counts checkpointed files skipped entirely because
	// nothing changed (incremental crawls only).
	Unchanged int
}

// IndexResult is a completed IndexDir crawl.
type IndexResult struct {
	// Files lists every crawled file in sorted path order.
	Files []IndexedFile
	// Formats lists the registry's formats in first-registered order.
	Formats []IndexedFormat
	// Summary aggregates the run.
	Summary IndexSummary
}

// IndexDir crawls a directory tree of heterogeneous log files — the
// paper's data-lake scenario. Structure is discovered once per format,
// on a bounded sample of the first file exhibiting it; every other file
// of that format is claimed by the registered profile and runs the
// discovery-free one-pass extraction. Files are processed concurrently
// (IndexOptions.Workers), but classification is sequential in sorted
// path order, so the registry and every result are independent of the
// worker count.
//
// Hidden files and directories (name starting with ".") are skipped.
func IndexDir(dir string, opts IndexOptions) (*IndexResult, error) {
	return IndexDirContext(context.Background(), dir, opts)
}

// IndexDirContext is IndexDir with cancellation: ctx aborts the crawl
// between files and, within a file, between shards. On cancellation
// nothing is written back — the registry and checkpoint store on disk
// stay as the last completed run left them.
func IndexDirContext(ctx context.Context, dir string, opts IndexOptions) (*IndexResult, error) {
	reg := lake.NewRegistry()
	if opts.RegistryPath != "" {
		var err error
		reg, err = lake.LoadRegistry(opts.RegistryPath)
		if err != nil {
			return nil, err
		}
	}
	var checkpoints *follow.Store
	if opts.CheckpointPath != "" {
		var err error
		checkpoints, err = follow.LoadStore(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
	}
	var store *lake.SegmentStore
	var txn *lake.StoreTxn
	if opts.StorePath != "" {
		var err error
		store, err = lake.OpenSegmentStore(opts.StorePath)
		if err != nil {
			return nil, err
		}
		txn = store.Begin()
	}
	res, err := lake.IndexContext(ctx, dir, reg, lake.Config{
		Core:           opts.Extract.internal(),
		Workers:        opts.Workers,
		SampleBytes:    opts.SampleBytes,
		MatchThreshold: opts.MatchThreshold,
		Checkpoints:    checkpoints,
		Segments:       txn,
	})
	if err != nil {
		if txn != nil {
			txn.Abort()
		}
		return nil, err
	}
	if txn != nil {
		if err := txn.Commit(); err != nil {
			return nil, err
		}
		// Repeated crawls accumulate one segment file per (format,
		// run); compaction folds tables back under the bound so scan
		// cost stays flat across runs.
		if _, err := store.Compact(lake.DefaultCompactFiles); err != nil {
			return nil, err
		}
	}
	if opts.RegistryPath != "" {
		if err := reg.Save(opts.RegistryPath); err != nil {
			return nil, err
		}
	}
	if opts.CheckpointPath != "" {
		if err := checkpoints.Save(opts.CheckpointPath); err != nil {
			return nil, err
		}
	}
	return wrapIndexResult(res, reg), nil
}

// wrapIndexResult converts the internal crawl result to the public form.
func wrapIndexResult(res *lake.Result, reg *lake.Registry) *IndexResult {
	out := &IndexResult{Summary: IndexSummary(res.Summary)}
	for _, f := range res.Files {
		pf := IndexedFile{
			Path:         f.Path,
			Size:         f.Size,
			Fingerprint:  f.Fingerprint,
			Discovered:   f.Status == lake.StatusDiscovered,
			Unstructured: f.Status == lake.StatusUnstructured,
			Err:          f.Err,
		}
		if f.Res != nil {
			pf.Result = wrapResult(nil, f.Res)
		}
		if f.Inc != nil {
			pf.Resume = f.Inc.Action.String()
			if f.Inc.Action == follow.ActionFull {
				pf.Resume = f.Inc.Reason
			}
			pf.PriorRecords = f.Inc.BaseRecords
			pf.PriorNoise = f.Inc.BaseNoise
			pf.TotalRecords = f.Inc.TotalRecords
			pf.TotalNoise = f.Inc.TotalNoise
		}
		out.Files = append(out.Files, pf)
	}
	for _, e := range reg.Entries() {
		p := &Profile{}
		for _, t := range e.Templates {
			p.templates = append(p.templates, t.Clone())
		}
		out.Formats = append(out.Formats, IndexedFormat{
			Fingerprint: e.Fingerprint,
			Templates:   p.Templates(),
			Files:       e.Files,
			Discovered:  res.NewFormats[e.Fingerprint],
			profile:     p,
		})
	}
	return out
}
