package datamaran_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"datamaran"
	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/parser"
	"datamaran/internal/textio"
)

// equivInputs gathers the property-test corpus: generated datasets from
// the GitHub-style corpus plus fixture files of the data lake. Each input
// costs at least one full discovery run (~seconds on the 1-CPU reference
// host, ~10x that under the race detector), so coverage is budgeted:
// the full run sweeps a broad stride, -short keeps one dataset per corpus
// stripe and one lake file per format, and the race build trims to a
// minimal cross-section — the per-line matcher's race coverage lives in
// the dedicated internal/parser and internal/pipeline race tests, this
// sweep only has to exercise the property end to end.
func equivInputs(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	stride := 12
	if testing.Short() {
		stride = 33 // indices 0, 33, 66, 99 — one per corpus label family
	}
	if raceEnabled {
		stride = 99 // indices 0 and 99 only
	}
	for i, d := range datagen.GitHubCorpus(42) {
		if i%stride != 0 {
			continue
		}
		out[fmt.Sprintf("corpus/%02d-%s", i, d.Name)] = d.Data
	}
	err := filepath.Walk("testdata/lake", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if testing.Short() && !strings.Contains(path, "-1.") {
			return nil // one file per format is enough to catch a drift
		}
		if raceEnabled && !strings.Contains(path, "requests-1.") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = data
		return nil
	})
	if err != nil {
		t.Fatalf("walk testdata/lake: %v", err)
	}
	return out
}

// sortedNames gives the map a deterministic iteration order so failures
// reproduce.
func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// treeScanReference reproduces the pre-arena Scan through the public tree
// API only (offset map, Match, Flatten) — the oracle for the two-phase
// matcher.
type treeScanReference struct {
	records    []parser.Record
	fields     [][]parser.FieldOcc
	noiseLines []int
	coverage   int
	fieldBytes int
}

func treeScan(m *parser.Matcher, lines *textio.Lines) *treeScanReference {
	res := &treeScanReference{}
	data := lines.Data()
	n := lines.N()
	lineOf := make(map[int]int, n)
	for i := 0; i <= n; i++ {
		lineOf[lines.Start(i)] = i
	}
	i := 0
	for i < n {
		pos := lines.Start(i)
		v, end, ok := m.Match(data, pos)
		if ok {
			if endLine, aligned := lineOf[end]; aligned && endLine > i {
				res.records = append(res.records, parser.Record{
					StartLine: i, EndLine: endLine, Start: pos, End: end, Value: v,
				})
				occs := m.Flatten(v)
				for _, f := range occs {
					res.fieldBytes += f.End - f.Start
				}
				res.fields = append(res.fields, occs)
				res.coverage += end - pos
				i = endLine
				continue
			}
		}
		res.noiseLines = append(res.noiseLines, i)
		i++
	}
	return res
}

func requireScanEqual(t *testing.T, label string, want *treeScanReference, got *parser.ScanResult) {
	t.Helper()
	if len(got.Records) != len(want.records) {
		t.Fatalf("%s: records = %d, want %d", label, len(got.Records), len(want.records))
	}
	for i := range want.records {
		g, w := got.Records[i], want.records[i]
		if g.StartLine != w.StartLine || g.EndLine != w.EndLine || g.Start != w.Start || g.End != w.End {
			t.Fatalf("%s: record %d spans differ: got [%d,%d)@[%d,%d), want [%d,%d)@[%d,%d)",
				label, i, g.StartLine, g.EndLine, g.Start, g.End, w.StartLine, w.EndLine, w.Start, w.End)
		}
		gf, wf := got.Fields(i), want.fields[i]
		if len(gf) != len(wf) {
			t.Fatalf("%s: record %d fields = %d, want %d", label, i, len(gf), len(wf))
		}
		for j := range wf {
			if gf[j] != wf[j] {
				t.Fatalf("%s: record %d field %d = %+v, want %+v", label, i, j, gf[j], wf[j])
			}
		}
	}
	if len(got.NoiseLines) != len(want.noiseLines) {
		t.Fatalf("%s: noise count = %d, want %d", label, len(got.NoiseLines), len(want.noiseLines))
	}
	for i := range want.noiseLines {
		if got.NoiseLines[i] != want.noiseLines[i] {
			t.Fatalf("%s: noise line %d = %d, want %d", label, i, got.NoiseLines[i], want.noiseLines[i])
		}
	}
	if got.Coverage != want.coverage || got.FieldBytes != want.fieldBytes {
		t.Fatalf("%s: coverage/fieldBytes = %d/%d, want %d/%d",
			label, got.Coverage, got.FieldBytes, want.coverage, want.fieldBytes)
	}
}

// TestTwoPhaseScanMatchesTreePathOnCorpus discovers structures on every
// corpus input, then pins the arena-based Scan and ScanParallel (workers
// 1, 2, 8) to the tree-path reference — records, field occurrences, noise,
// coverage and field bytes must be identical.
func TestTwoPhaseScanMatchesTreePathOnCorpus(t *testing.T) {
	inputs := equivInputs(t)
	for _, name := range sortedNames(inputs) {
		data := inputs[name]
		res, err := core.Extract(data, core.Options{})
		if err != nil {
			t.Fatalf("%s: discovery: %v", name, err)
		}
		lines := textio.NewLines(data)
		for _, s := range res.Structures {
			m := parser.NewMatcher(s.Template)
			want := treeScan(m, lines)
			requireScanEqual(t, name+"/seq", want, m.Scan(lines))
			for _, workers := range []int{1, 2, 8} {
				label := fmt.Sprintf("%s/workers%d", name, workers)
				requireScanEqual(t, label, want, m.ScanParallel(lines, workers))
			}
		}
	}
}

// extractionFingerprint renders an extraction to comparable bytes: every
// record with spans and field values, plus the CSV of every table.
func extractionFingerprint(t *testing.T, r *datamaran.Result) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "rec t%d [%d,%d)", rec.Type, rec.StartLine, rec.EndLine)
		for _, f := range rec.Fields {
			fmt.Fprintf(&b, " %d.%d@%d-%d=%q", f.Column, f.Repetition, f.Start, f.End, f.Value)
		}
		b.WriteByte('\n')
	}
	for _, tab := range r.TablesWith(datamaran.TablesOptions{}) {
		fmt.Fprintf(&b, "table %s\n", tab.Name)
		if err := tab.WriteCSV(&b); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
	}
	return b.Bytes()
}

// TestExtractWorkerInvariantOnCorpus pins the end-to-end output — records,
// field values and CSV tables — to be byte-identical across worker counts
// on every corpus input (the parallel scan path vs the sequential one).
// Each input costs three full discovery runs, so it halves the input set
// on top of equivInputs' own trimming, and skips under the race detector
// (the scan-level sweep above and the parser/pipeline race suites carry
// the -race coverage at a fraction of the cost).
func TestExtractWorkerInvariantOnCorpus(t *testing.T) {
	if raceEnabled {
		t.Skip("three discovery runs per input; race coverage lives in the scan-level sweep")
	}
	inputs := equivInputs(t)
	for k, name := range sortedNames(inputs) {
		if k%2 == 1 {
			continue
		}
		data := inputs[name]
		base, err := datamaran.Extract(data, datamaran.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := extractionFingerprint(t, base)
		for _, workers := range []int{2, 8} {
			got, err := datamaran.Extract(data, datamaran.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if fp := extractionFingerprint(t, got); !bytes.Equal(fp, want) {
				t.Fatalf("%s: workers=%d output differs from workers=1", name, workers)
			}
		}
	}
}
