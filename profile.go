package datamaran

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"datamaran/internal/core"
	"datamaran/internal/lake"
	"datamaran/internal/pipeline"
	"datamaran/internal/template"
)

// Profile is a learned, serializable set of structure templates. In a
// data lake, many files share a format: discover the structure once with
// Extract, save the profile, and apply it to sibling files with
// ExtractWithProfile — which runs only the linear extraction pass, no
// template search.
type Profile struct {
	templates []*template.Node
}

// Profile captures the discovered structures of a completed extraction.
func (r *Result) Profile() *Profile {
	p := &Profile{}
	for _, s := range r.res.Structures {
		p.templates = append(p.templates, s.Template.Clone())
	}
	return p
}

// Templates lists the profile's structure templates in the paper's
// notation.
func (p *Profile) Templates() []string {
	out := make([]string, len(p.templates))
	for i, t := range p.templates {
		out[i] = t.String()
	}
	return out
}

// Fingerprint returns the profile's stable identifier: a hash of the
// canonical template serialization. Two profiles fingerprint equal iff
// their template sets serialize equal, so the fingerprint names a
// format across runs and machines — it is the key of the IndexDir
// profile registry.
func (p *Profile) Fingerprint() string {
	return lake.Fingerprint(p.templates)
}

// profileVersion is the serialized profile format version this package
// reads and writes.
const profileVersion = 1

// profileJSON is the serialized profile format (versioned for forward
// compatibility).
type profileJSON struct {
	Version   int               `json:"version"`
	Templates []json.RawMessage `json:"templates"`
}

// MarshalJSON serializes the profile.
func (p *Profile) MarshalJSON() ([]byte, error) {
	pj := profileJSON{Version: profileVersion}
	for _, t := range p.templates {
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, err
		}
		pj.Templates = append(pj.Templates, raw)
	}
	return json.Marshal(pj)
}

// UnmarshalJSON parses a profile serialized by MarshalJSON. Profiles
// with a missing, non-integer or unknown version are rejected with a
// clear error rather than silently misparsed: a future profile format
// may serialize templates differently, so guessing would produce a
// plausible-looking but wrong profile.
func (p *Profile) UnmarshalJSON(data []byte) error {
	// Decode the version alone first, so a version field of the wrong
	// JSON type reports a version problem, not a template one.
	var ver struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &ver); err != nil {
		return fmt.Errorf("datamaran: bad profile version field (supported: %d): %w", profileVersion, err)
	}
	if ver.Version == nil {
		return fmt.Errorf("datamaran: profile missing version field (supported: %d)", profileVersion)
	}
	if *ver.Version != profileVersion {
		return fmt.Errorf("datamaran: unsupported profile version %d (supported: %d)", *ver.Version, profileVersion)
	}
	var pj profileJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return fmt.Errorf("datamaran: bad profile: %w", err)
	}
	p.templates = nil
	for _, raw := range pj.Templates {
		n, err := template.UnmarshalNode(raw)
		if err != nil {
			return fmt.Errorf("datamaran: bad profile template: %w", err)
		}
		p.templates = append(p.templates, n.Normalize())
	}
	return nil
}

// ExtractWithProfile extracts records from data using the already-learned
// templates of p, skipping structure discovery entirely. It runs in one
// linear pass per template (the O(Tdata) extraction row of Table 3).
func ExtractWithProfile(data []byte, p *Profile) (*Result, error) {
	return ExtractWithProfileParallel(data, p, 0)
}

// ExtractWithProfileParallel is ExtractWithProfile with the per-template
// scans fanned out over workers goroutines (0 or 1 sequential, negative
// all cores). Output is identical to ExtractWithProfile.
func ExtractWithProfileParallel(data []byte, p *Profile, workers int) (*Result, error) {
	if p == nil || len(p.templates) == 0 {
		return nil, fmt.Errorf("datamaran: empty profile")
	}
	res, err := core.ApplyTemplatesParallel(data, p.templates, workers)
	if err != nil {
		return nil, err
	}
	return wrapResult(data, res), nil
}

// ExtractReaderWithProfile is ExtractWithProfile over a stream: no
// discovery, no prefix buffering — the input flows through the sharded
// engine in a single pass from the first byte, with per-shard matching
// parallelized across Options.Workers. Structures, records and noise
// lines are identical to ExtractWithProfile on the same bytes.
func ExtractReaderWithProfile(r io.Reader, p *Profile, opts Options) (*Result, error) {
	return ExtractReaderWithProfileContext(context.Background(), r, p, opts)
}

// ExtractReaderWithProfileContext is ExtractReaderWithProfile with
// cancellation: ctx is checked between shards, so a served extraction
// aborts within one shard of the client disconnecting.
func ExtractReaderWithProfileContext(ctx context.Context, r io.Reader, p *Profile, opts Options) (*Result, error) {
	if p == nil || len(p.templates) == 0 {
		return nil, fmt.Errorf("datamaran: empty profile")
	}
	cfg := opts.pipelineConfig()
	cfg.Templates = p.templates
	res, err := pipeline.RunContext(ctx, r, cfg)
	if err != nil {
		return nil, err
	}
	return wrapResult(nil, res), nil
}

// ExtractStreamWithProfile applies a learned profile to a stream in
// constant memory, yielding each record as its shard is finalized — the
// highest-throughput path for data-lake files sharing one format.
func ExtractStreamWithProfile(r io.Reader, p *Profile, opts Options, fn func(Record) error) (*Result, error) {
	return ExtractStreamWithProfileContext(context.Background(), r, p, opts, fn)
}

// ExtractStreamWithProfileContext is ExtractStreamWithProfile with
// cancellation (see ExtractReaderWithProfileContext).
func ExtractStreamWithProfileContext(ctx context.Context, r io.Reader, p *Profile, opts Options, fn func(Record) error) (*Result, error) {
	if p == nil || len(p.templates) == 0 {
		return nil, fmt.Errorf("datamaran: empty profile")
	}
	cfg := opts.pipelineConfig()
	cfg.Templates = p.templates
	return runStream(ctx, r, cfg, fn)
}
