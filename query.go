package datamaran

import (
	"context"
	"io"

	"datamaran/internal/lake"
	"datamaran/internal/query"
)

// QueryOptions configures Query, the relational query entry point over
// a lake's record store.
type QueryOptions struct {
	// StorePath is the record-store directory: the per-format columnar
	// segments written by IndexDir (IndexOptions.StorePath) or by
	// `datamaran serve -store`. Required.
	StorePath string
}

// QueryRows streams one query's results. Rows arrive as the underlying
// segment scans produce them — memory stays bounded by the engine's
// block and hash-table working set, never the full result.
type QueryRows struct {
	rows *query.Rows
}

// Columns returns the output column names (as the SELECT list renders
// them, e.g. "j.f1" or "count(*)").
func (r *QueryRows) Columns() []string { return r.rows.Columns() }

// Kinds returns the per-column scalar kinds ("int", "float", "string").
func (r *QueryRows) Kinds() []string {
	ks := r.rows.Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

// Next returns the next result row, or io.EOF after the last.
func (r *QueryRows) Next() ([]string, error) { return r.rows.Next() }

// Close releases the query's open scans.
func (r *QueryRows) Close() error { return r.rows.Close() }

// WriteCSV drains the remaining rows as CSV — byte-identical to the
// CLI's `datamaran query -output csv` and the daemon's
// /v1/query?output=csv for the same store and query.
func (r *QueryRows) WriteCSV(w io.Writer) error { return query.WriteCSV(w, r.rows, nil) }

// WriteNDJSON drains the remaining rows as NDJSON: a
// {"columns":…,"kinds":…} schema line, then one {"values":…} object per
// row — byte-identical to the other query surfaces.
func (r *QueryRows) WriteNDJSON(w io.Writer) error { return query.WriteNDJSON(w, r.rows, nil) }

// Query parses and runs one relational query against a record store.
// The text form is a minimal SELECT:
//
//	SELECT cols | aggregates | *
//	FROM table [AS alias] [, table [AS alias]]...
//	[WHERE pred [AND pred]...]
//	[GROUP BY cols] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
// Tables are format fingerprints (unique prefixes accepted, "_<k>"
// suffix for record types beyond the first); columns are the
// denormalized f0..fN. Predicates compare a column to a literal or to
// another column (equi-joins). Execution streams: selection, projection,
// hash equi-join and group-by run as pull iterators over segment scans,
// joins ordered greedily by visible selectivity, and ctx cancels the
// run between rows.
func Query(ctx context.Context, text string, opts QueryOptions) (*QueryRows, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	store, err := lake.OpenSegmentStore(opts.StorePath)
	if err != nil {
		return nil, err
	}
	rows, err := query.Run(ctx, query.StoreCatalog(store), q)
	if err != nil {
		return nil, err
	}
	return &QueryRows{rows: rows}, nil
}
