package datamaran

import (
	"context"
	"io"

	"datamaran/internal/lake"
	"datamaran/internal/query"
)

// QueryOptions configures Query, the relational query entry point over
// a lake's record store.
type QueryOptions struct {
	// StorePath is the record-store directory: the per-format columnar
	// segments written by IndexDir (IndexOptions.StorePath) or by
	// `datamaran serve -store`. Required.
	StorePath string
	// DisablePushdown runs the query without predicate/projection
	// pushdown (every column decoded, every predicate evaluated above
	// the scan, no zone-map block skipping) — the pre-pushdown
	// reference path. Results are identical either way; benchmarks use
	// it to measure the pushdown win.
	DisablePushdown bool
	// Explain selects an explain mode instead of result rows: "plan"
	// returns the plan tree without executing (deterministic), and
	// "analyze" executes the query and annotates the tree with
	// per-operator rows, wall times, and scan blocks decoded vs
	// zone-map-pruned. Either way the output is a single-column "plan"
	// row stream, byte-identical across the Go API, the CLI and
	// /v1/query. Empty ("" or "none") runs the query normally.
	Explain string
}

// TableStat summarizes one record-store table straight from the
// manifest — no segment is opened or scanned.
type TableStat struct {
	// Name is the table's query name: the format fingerprint, with a
	// "_<k>" suffix for record types beyond the first.
	Name string
	// Columns is the table width (the denormalized f0..fN schema).
	Columns int
	// Rows is the total row count across segments.
	Rows int
	// Segments counts the contributing source files.
	Segments int
}

// StoreTables lists a record store's tables with their manifest-held
// sizes, in the manifest's (fingerprint, type) order. The counts come
// from the manifest alone, so this is cheap regardless of store size —
// it is what `datamaran query -tables` and the daemon's /v1/status
// report.
func StoreTables(storePath string) ([]TableStat, error) {
	store, err := lake.OpenSegmentStore(storePath)
	if err != nil {
		return nil, err
	}
	var out []TableStat
	for _, ti := range store.Tables() {
		out = append(out, TableStat{Name: ti.Name, Columns: len(ti.Columns), Rows: ti.Rows, Segments: ti.Segments})
	}
	return out, nil
}

// QueryRows streams one query's results. Rows arrive as the underlying
// segment scans produce them — memory stays bounded by the engine's
// block and hash-table working set, never the full result.
type QueryRows struct {
	rows *query.Rows
}

// Columns returns the output column names (as the SELECT list renders
// them, e.g. "j.f1" or "count(*)").
func (r *QueryRows) Columns() []string { return r.rows.Columns() }

// Kinds returns the per-column scalar kinds ("int", "float", "string").
func (r *QueryRows) Kinds() []string {
	ks := r.rows.Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

// Next returns the next result row, or io.EOF after the last.
func (r *QueryRows) Next() ([]string, error) { return r.rows.Next() }

// Close releases the query's open scans.
func (r *QueryRows) Close() error { return r.rows.Close() }

// WriteCSV drains the remaining rows as CSV — byte-identical to the
// CLI's `datamaran query -output csv` and the daemon's
// /v1/query?output=csv for the same store and query.
func (r *QueryRows) WriteCSV(w io.Writer) error { return query.WriteCSV(w, r.rows, nil) }

// WriteNDJSON drains the remaining rows as NDJSON: a
// {"columns":…,"kinds":…} schema line, then one {"values":…} object per
// row — byte-identical to the other query surfaces.
func (r *QueryRows) WriteNDJSON(w io.Writer) error { return query.WriteNDJSON(w, r.rows, nil) }

// Query parses and runs one relational query against a record store.
// The text form is a minimal SELECT:
//
//	SELECT cols | aggregates | *
//	FROM table [AS alias] [, table [AS alias]]...
//	[WHERE pred [AND pred]...]
//	[GROUP BY cols] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
// Tables are format fingerprints (unique prefixes accepted, "_<k>"
// suffix for record types beyond the first); columns are the
// denormalized f0..fN. Predicates compare a column to a literal or to
// another column (equi-joins). Execution streams: selection, projection,
// hash equi-join and group-by run as pull iterators over segment scans,
// joins ordered greedily by visible selectivity, and ctx cancels the
// run between rows.
func Query(ctx context.Context, text string, opts QueryOptions) (*QueryRows, error) {
	explain, err := query.ParseExplainMode(opts.Explain)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	store, err := lake.OpenSegmentStore(opts.StorePath)
	if err != nil {
		return nil, err
	}
	cat := query.StoreCatalog(store)
	if opts.DisablePushdown {
		cat = query.NoPushdown(cat)
	}
	rows, err := query.RunWith(ctx, cat, q, query.Options{Explain: explain})
	if err != nil {
		return nil, err
	}
	return &QueryRows{rows: rows}, nil
}
