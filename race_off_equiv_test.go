//go:build !race

package datamaran_test

// raceEnabled reports whether the race detector instruments this build;
// the corpus property sweeps trim their input budget under it.
const raceEnabled = false
