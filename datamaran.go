// Package datamaran is a Go implementation of Datamaran (Gao, Huang,
// Parameswaran — SIGMOD 2018): fully unsupervised structure extraction
// from log datasets.
//
// Given a semi-structured log file, Datamaran discovers the record
// structure with no training examples, no record-boundary hints, and no
// per-dataset tokenizer configuration. It handles records spanning
// multiple lines, multiple record types interleaved in one file, and
// noise mixed between records. The result is a set of structure templates
// (restricted regular expressions over a field placeholder) plus every
// extracted record and field value, convertible to relational tables.
//
// Basic usage:
//
//	res, err := datamaran.Extract(data, datamaran.Options{})
//	if err != nil { ... }
//	for _, s := range res.Structures {
//	    fmt.Println(s.Template, s.Records)
//	}
//	for _, tbl := range res.Tables() {
//	    tbl.WriteCSV(os.Stdout)
//	}
//
// The pipeline is the paper's three-step design: a generation step that
// hashes the minimal structure templates of all candidate record windows
// to find high-coverage patterns, a pruning step ordering candidates by
// the assimilation score, and an evaluation step that refines (array
// unfolding, structure shifting) and scores candidates with a minimum
// description length regularity measure.
package datamaran

import (
	"context"
	"io"
	"os"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/generation"
	"datamaran/internal/pipeline"
)

// SearchMode selects how the generation step enumerates RT-CharSet values.
type SearchMode int

const (
	// Exhaustive enumerates all 2^c charsets (the paper's default;
	// slower, more accurate).
	Exhaustive SearchMode = iota
	// Greedy grows the charset greedily, enumerating O(c²) subsets.
	Greedy
)

// Options configures extraction. The zero value selects the paper's
// defaults: α=10%, L=10, M=50, exhaustive search.
type Options struct {
	// Alpha is the minimum coverage threshold α as a fraction of the
	// dataset a record type must cover (default 0.10).
	Alpha float64
	// MaxSpan is L, the maximum number of lines one record may span
	// (default 10).
	MaxSpan int
	// TopM is M, the number of structure templates retained after the
	// pruning step (default 50; -1 disables pruning).
	TopM int
	// Search selects Exhaustive or Greedy charset enumeration.
	Search SearchMode
	// MaxRecordTypes bounds how many interleaved record types the
	// multi-template loop may extract (default 8).
	MaxRecordTypes int
	// SampleBudget caps the bytes examined by the generation step;
	// 0 means 512 KiB, negative disables sampling. Extraction always
	// processes the full input.
	SampleBudget int
	// EvalBudget caps the bytes used for scoring and refinement;
	// 0 means 128 KiB, negative disables sampling.
	EvalBudget int
	// DisableRefinement turns off array unfolding and structure
	// shifting (exposed for ablation studies).
	DisableRefinement bool
	// Workers sets the goroutine parallelism of the extraction scans
	// and of the streaming engine's per-shard matching. 0 means
	// GOMAXPROCS for ExtractReader/ExtractStream and sequential for
	// Extract; 1 forces sequential everywhere.
	Workers int
	// ShardSize is the target shard size in bytes for the streaming
	// engine (ExtractReader, ExtractStream). 0 means 1 MiB.
	ShardSize int
	// DiscoveryBudget caps the input prefix buffered by the streaming
	// engine for structure discovery. 0 means 8 MiB. Inputs no larger
	// than the budget produce results identical to Extract.
	DiscoveryBudget int
}

func (o Options) internal() core.Options {
	opts := core.Options{
		Alpha:             o.Alpha,
		MaxSpan:           o.MaxSpan,
		TopM:              o.TopM,
		MaxRecordTypes:    o.MaxRecordTypes,
		SampleBudget:      o.SampleBudget,
		EvalBudget:        o.EvalBudget,
		DisableRefinement: o.DisableRefinement,
		Workers:           o.Workers,
	}
	if o.Search == Greedy {
		opts.Search = generation.Greedy
	}
	return opts
}

// pipelineConfig maps the public options onto the streaming engine.
func (o Options) pipelineConfig() pipeline.Config {
	workers := o.Workers
	if workers == 0 {
		workers = -1 // streaming default: use all cores
	}
	co := o.internal()
	co.Workers = workers
	return pipeline.Config{
		Core:            co,
		ShardSize:       o.ShardSize,
		Workers:         workers,
		DiscoveryBudget: o.DiscoveryBudget,
	}
}

// Field is one extracted field value.
type Field struct {
	// Column is the field's column index in its record type's template.
	// Fields inside a list share a column across repetitions.
	Column int
	// Repetition is the ordinal within a list (0 outside lists).
	Repetition int
	// Start and End are byte offsets into the input.
	Start, End int
	// Value is the field text.
	Value string
}

// Record is one extracted record.
type Record struct {
	// Type identifies the record's structure (index into
	// Result.Structures).
	Type int
	// StartLine and EndLine delimit the record's lines [StartLine, EndLine).
	StartLine, EndLine int
	// Fields lists the record's field values in template order.
	Fields []Field
}

// Structure describes one discovered record type.
type Structure struct {
	// Type is the structure's id, in discovery order.
	Type int
	// Template is the structure template in the paper's notation
	// (fields as 'F', lists as "({body}x)*{body}y").
	Template string
	// Columns is the number of field columns.
	Columns int
	// Records is the number of records extracted.
	Records int
	// Coverage is the total byte length of those records.
	Coverage int
	// MultiLine reports whether records span more than one line.
	MultiLine bool
}

// Timing reports where extraction time went (Table 3 of the paper).
type Timing struct {
	Generation time.Duration
	Pruning    time.Duration
	Evaluation time.Duration
	Extraction time.Duration
}

// Total returns the summed step time.
func (t Timing) Total() time.Duration {
	return t.Generation + t.Pruning + t.Evaluation + t.Extraction
}

// Result holds a completed extraction.
type Result struct {
	// Structures lists the discovered record types, best first.
	Structures []Structure
	// Records lists every extracted record in input order per type.
	Records []Record
	// NoiseLines lists input line indices not covered by any record.
	NoiseLines []int
	// Timing breaks down the run time by pipeline step.
	Timing Timing

	data []byte
	res  *core.Result
}

// Extract runs Datamaran on data.
func Extract(data []byte, opts Options) (*Result, error) {
	res, err := core.Extract(data, opts.internal())
	if err != nil {
		return nil, err
	}
	return wrapResult(data, res), nil
}

// wrapResult converts the internal result into the public form.
func wrapResult(data []byte, res *core.Result) *Result {
	out := &Result{data: data, res: res, NoiseLines: res.NoiseLines,
		Timing: Timing{
			Generation: res.Timing.Generation,
			Pruning:    res.Timing.Pruning,
			Evaluation: res.Timing.Evaluation,
			Extraction: res.Timing.Extraction,
		}}
	for _, s := range res.Structures {
		multi := false
		for _, r := range res.Records {
			if r.TypeID == s.TypeID && r.EndLine-r.StartLine > 1 {
				multi = true
				break
			}
		}
		out.Structures = append(out.Structures, Structure{
			Type:      s.TypeID,
			Template:  s.Template.String(),
			Columns:   s.Template.NumFields(),
			Records:   s.Records,
			Coverage:  s.Coverage,
			MultiLine: multi,
		})
	}
	for _, r := range res.Records {
		out.Records = append(out.Records, publicRecord(r))
	}
	return out
}

// publicRecord converts one internal record to the public form.
func publicRecord(r core.RecordOut) Record {
	rec := Record{Type: r.TypeID, StartLine: r.StartLine, EndLine: r.EndLine}
	for _, f := range r.Fields {
		rec.Fields = append(rec.Fields, Field{
			Column: f.Col, Repetition: f.Rep,
			Start: f.Start, End: f.End, Value: f.Value,
		})
	}
	return rec
}

// ExtractReader runs the streaming, sharded extraction engine on r: the
// input is consumed as line-aligned shards, structure discovery runs on a
// bounded prefix (Options.DiscoveryBudget), and extraction fans per-shard
// template matching out over Options.Workers goroutines. The input is
// never buffered whole — memory stays bounded by a few shards per record
// type (the extracted records themselves are still materialized into the
// Result; use ExtractStream to bound that too).
//
// For inputs no larger than the discovery budget the result's structures,
// records and noise lines are identical to Extract's.
func ExtractReader(r io.Reader, opts Options) (*Result, error) {
	return ExtractReaderContext(context.Background(), r, opts)
}

// ExtractReaderContext is ExtractReader with cancellation: ctx is
// checked between shards, so a long extraction aborts within one shard
// of the cancel — the request-cancellation hook of the serve daemon.
func ExtractReaderContext(ctx context.Context, r io.Reader, opts Options) (*Result, error) {
	res, err := pipeline.RunContext(ctx, r, opts.pipelineConfig())
	if err != nil {
		return nil, err
	}
	return wrapResult(nil, res), nil
}

// ExtractStream is ExtractReader in bounded-memory form: every record is
// yielded to fn as soon as its shard is finalized instead of being
// accumulated. Records of one type arrive in input order; different types
// interleave at shard granularity. A non-nil error from fn aborts the
// run. The returned Result carries the structures, noise lines and
// timing, with Records empty — so the table builders return schema-only
// tables for a streamed result; use ExtractReader when tables are
// needed. Memory is bounded except for the noise line indices, which
// still accumulate into Result.NoiseLines (8 bytes per unmatched line).
func ExtractStream(r io.Reader, opts Options, fn func(Record) error) (*Result, error) {
	return ExtractStreamContext(context.Background(), r, opts, fn)
}

// ExtractStreamContext is ExtractStream with cancellation (see
// ExtractReaderContext).
func ExtractStreamContext(ctx context.Context, r io.Reader, opts Options, fn func(Record) error) (*Result, error) {
	cfg := opts.pipelineConfig()
	return runStream(ctx, r, cfg, fn)
}

// runStream executes the pipeline in callback mode, reconstructing the
// per-structure MultiLine flag (normally derived from Result.Records)
// from the records flowing past.
func runStream(ctx context.Context, r io.Reader, cfg pipeline.Config, fn func(Record) error) (*Result, error) {
	multi := map[int]bool{}
	cfg.OnRecord = func(ro core.RecordOut) error {
		if ro.EndLine-ro.StartLine > 1 {
			multi[ro.TypeID] = true
		}
		return fn(publicRecord(ro))
	}
	res, err := pipeline.RunContext(ctx, r, cfg)
	if err != nil {
		return nil, err
	}
	out := wrapResult(nil, res)
	for i := range out.Structures {
		if multi[out.Structures[i].Type] {
			out.Structures[i].MultiLine = true
		}
	}
	return out, nil
}

// ExtractFile extracts from the named file.
func ExtractFile(path string, opts Options) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Extract(data, opts)
}
