package datamaran

import (
	"fmt"
	"io"

	"datamaran/internal/parser"
	"datamaran/internal/relational"
	"datamaran/internal/semtype"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// Table is a relational table produced from an extraction (Figure 7 of
// the paper).
type Table struct {
	// Name names the table; child list tables reference their parent.
	Name string
	// Parent is the referenced parent table name ("" for a root table).
	Parent string
	// Columns lists the column names ("id" and "parent_id" are
	// bookkeeping columns of the normalized form).
	Columns []string
	// Rows holds the string-valued cells.
	Rows [][]string
}

// WriteCSV writes the table as CSV (cells containing commas, quotes or
// newlines are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	rt := relational.Table{Name: t.Name, Columns: t.Columns, Rows: t.Rows}
	return rt.WriteCSV(w)
}

// flatRecords gathers the stored field values of one type in record
// order — the table-building path for streamed extractions, which retain
// no input buffer to re-parse.
func (r *Result) flatRecords(typeID int) [][]relational.FlatField {
	var out [][]relational.FlatField
	for _, rec := range r.res.Records {
		if rec.TypeID != typeID {
			continue
		}
		fields := make([]relational.FlatField, 0, len(rec.Fields))
		for _, f := range rec.Fields {
			fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
		}
		out = append(out, fields)
	}
	return out
}

// rebuildScan re-parses the already-located records of one type so the
// relational builders can walk their parse trees.
func (r *Result) rebuildScan(typeID int) (*parser.Matcher, *parser.ScanResult, bool) {
	if typeID < 0 || typeID >= len(r.res.Structures) || r.data == nil {
		return nil, nil, false
	}
	st := r.res.Structures[typeID].Template
	m := parser.NewMatcher(st)
	lines := textio.NewLines(r.data)
	scan := &parser.ScanResult{}
	for _, rec := range r.res.Records {
		if rec.TypeID != typeID {
			continue
		}
		v, end, ok := m.Match(r.data, lines.Start(rec.StartLine))
		if !ok {
			continue
		}
		scan.Records = append(scan.Records, parser.Record{
			StartLine: rec.StartLine,
			EndLine:   rec.EndLine,
			Start:     lines.Start(rec.StartLine),
			End:       end,
			Value:     v,
		})
	}
	return m, scan, true
}

// TablesOptions selects a relational form of an extraction —
// the unified face of the Tables/DenormalizedTables/TypedTables trio.
type TablesOptions struct {
	// Denormalized selects the single-table-per-type form: one row per
	// record, list repetitions folded into one cell per column. The
	// default is the normalized form — per record type, a root table
	// plus one child table per list, linked by foreign keys.
	Denormalized bool
	// Typed applies semantic-type post-processing to the denormalized
	// form (implies Denormalized): runs of adjacent fine-grained columns
	// that reassemble into IPs, times, dates, versions, emails or UUIDs
	// are merged into one named column.
	Typed bool
}

// TablesWith returns the extraction's relational tables in the
// requested form.
func (r *Result) TablesWith(opts TablesOptions) []*Table {
	switch {
	case opts.Typed:
		return r.typedTables()
	case opts.Denormalized:
		return r.denormalizedTables()
	default:
		return r.normalizedTables()
	}
}

// Tables returns the normalized relational form of the extraction: per
// record type, a root table plus one child table per list, linked by
// foreign keys.
//
// Deprecated: use TablesWith(TablesOptions{}).
func (r *Result) Tables() []*Table { return r.normalizedTables() }

func (r *Result) normalizedTables() []*Table {
	var out []*Table
	for typeID := range r.res.Structures {
		var db *relational.Database
		if m, scan, ok := r.rebuildScan(typeID); ok {
			db = relational.Build(m, r.data, scan, fmt.Sprintf("type%d", typeID))
		} else if r.data == nil {
			db = relational.BuildFlat(r.res.Structures[typeID].Template,
				r.flatRecords(typeID), fmt.Sprintf("type%d", typeID))
		} else {
			continue
		}
		for _, t := range db.Tables {
			out = append(out, &Table{Name: t.Name, Parent: t.Parent, Columns: t.Columns, Rows: t.Rows})
		}
	}
	return out
}

// DenormalizedTables returns the single-table-per-type form: one row per
// record, list repetitions folded into one cell per column.
//
// Deprecated: use TablesWith(TablesOptions{Denormalized: true}).
func (r *Result) DenormalizedTables() []*Table { return r.denormalizedTables() }

func (r *Result) denormalizedTables() []*Table {
	var out []*Table
	for typeID := range r.res.Structures {
		t := r.denormalized(typeID)
		if t == nil {
			continue
		}
		out = append(out, &Table{Name: t.Name, Columns: t.Columns, Rows: t.Rows})
	}
	return out
}

// denormalized builds the single-table form of one type via parse trees
// when the input buffer is resident, or from the stored field values for
// streamed extractions.
func (r *Result) denormalized(typeID int) *relational.Table {
	if m, scan, ok := r.rebuildScan(typeID); ok {
		return relational.BuildDenormalized(m, r.data, scan, fmt.Sprintf("type%d", typeID))
	}
	if r.data == nil {
		return relational.BuildDenormalizedFlat(r.res.Structures[typeID].Template,
			r.flatRecords(typeID), fmt.Sprintf("type%d", typeID))
	}
	return nil
}

// TypedTables returns the denormalized tables with semantic-type
// post-processing applied (the type-awareness extension of the paper's
// §6.3): runs of adjacent fine-grained columns that reassemble into IPs,
// times, dates, versions, emails or UUIDs — using the constant template
// literals between them — are merged into one named column.
//
// Deprecated: use TablesWith(TablesOptions{Typed: true}).
func (r *Result) TypedTables() []*Table { return r.typedTables() }

func (r *Result) typedTables() []*Table {
	var out []*Table
	for typeID := range r.res.Structures {
		t := r.denormalized(typeID)
		if t == nil {
			continue
		}
		seps := columnSeparators(r.res.Structures[typeID].Template)
		cols := make([]semtype.Column, len(t.Columns))
		for i, name := range t.Columns {
			cols[i].Name = name
			for _, row := range t.Rows {
				cols[i].Values = append(cols[i].Values, row[i])
			}
		}
		merges := semtype.Detect(cols, seps)
		names, rows := semtype.Apply(t.Columns, t.Rows, merges)
		out = append(out, &Table{Name: t.Name, Columns: names, Rows: rows})
	}
	return out
}

// columnSeparators extracts the constant literal between each pair of
// adjacent field columns of a template ("" when the columns are not
// joined by a pure literal, e.g. across array boundaries).
func columnSeparators(st *template.Node) []string {
	var seps []string
	pendingLit := ""
	sawField := false
	inArray := 0
	var walk func(n *template.Node)
	walk = func(n *template.Node) {
		switch n.Kind {
		case template.KField:
			if sawField {
				if inArray == 0 {
					seps = append(seps, pendingLit)
				} else {
					seps = append(seps, "")
				}
			}
			sawField = true
			pendingLit = ""
		case template.KLiteral:
			pendingLit += n.Lit
		case template.KStruct:
			for _, c := range n.Children {
				walk(c)
			}
		case template.KArray:
			inArray++
			for _, c := range n.Children {
				walk(c)
			}
			inArray--
			pendingLit = ""
		}
	}
	walk(st)
	return seps
}
