package datamaran

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestProfileLearnOnceApplyMany(t *testing.T) {
	// Learn on one file, apply to a sibling file with the same format
	// but different values.
	res, err := Extract(sampleCSV(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()
	if len(p.Templates()) != 1 {
		t.Fatalf("profile templates = %v", p.Templates())
	}

	rng := rand.New(rand.NewSource(77))
	var b strings.Builder
	for i := 0; i < 250; i++ {
		fmt.Fprintf(&b, "%d,%s,%d\n", rng.Intn(1e6), []string{"ok", "bad", "slow"}[rng.Intn(3)], rng.Intn(1e6))
	}
	sibling := []byte(b.String())

	res2, err := ExtractWithProfile(sibling, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Structures) != 1 || res2.Structures[0].Records != 250 {
		t.Fatalf("profile application: %+v", res2.Structures)
	}
	// Discovery steps must be skipped entirely.
	if res2.Timing.Generation != 0 || res2.Timing.Evaluation != 0 {
		t.Fatalf("profile application ran discovery: %+v", res2.Timing)
	}
	// Field spans must point into the sibling data.
	for _, r := range res2.Records[:5] {
		for _, f := range r.Fields {
			if string(sibling[f.Start:f.End]) != f.Value {
				t.Fatalf("span mismatch: %q vs %q", sibling[f.Start:f.End], f.Value)
			}
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	// Multi-line records with a list: the template tree (including the
	// array) must survive serialization.
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(4)
		vals := make([]string, n)
		for j := range vals {
			vals[j] = fmt.Sprintf("%d", rng.Intn(100))
		}
		fmt.Fprintf(&b, "hdr %d\nvals: %s;\n", rng.Intn(1000), strings.Join(vals, ","))
	}
	data := []byte(b.String())
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()

	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if strings.Join(back.Templates(), "|") != strings.Join(p.Templates(), "|") {
		t.Fatalf("round trip changed templates:\n%v\n%v", p.Templates(), back.Templates())
	}

	res2, err := ExtractWithProfile(data, &back)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != len(res.Records) {
		t.Fatalf("deserialized profile extracted %d records, original %d",
			len(res2.Records), len(res.Records))
	}
}

func TestProfileEmptyErrors(t *testing.T) {
	if _, err := ExtractWithProfile([]byte("x\n"), &Profile{}); err == nil {
		t.Fatal("empty profile should error")
	}
	if _, err := ExtractWithProfile([]byte("x\n"), nil); err == nil {
		t.Fatal("nil profile should error")
	}
}

func TestProfileVersionValidation(t *testing.T) {
	cases := map[string]struct {
		doc  string
		want string // substring of the error
	}{
		"future version":  {`{"version":99,"templates":[]}`, "unsupported profile version 99"},
		"missing version": {`{"templates":[]}`, "missing version"},
		"string version":  {`{"version":"1","templates":[]}`, "version field"},
	}
	for name, c := range cases {
		var p Profile
		err := json.Unmarshal([]byte(c.doc), &p)
		if err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}

func TestProfileFingerprint(t *testing.T) {
	res, err := Extract(sampleCSV(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()
	fp := p.Fingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", fp)
	}
	// The fingerprint survives serialization — it names the format, not
	// the in-memory objects.
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != fp {
		t.Fatalf("fingerprint changed across serialization: %s vs %s", back.Fingerprint(), fp)
	}
}

func TestProfileBadJSON(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`{"version":99,"templates":[]}`), &p); err == nil {
		t.Fatal("unknown version should error")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"templates":[{"kind":"array","sep":",","term":",","children":[{"kind":"field"}]}]}`), &p); err == nil {
		t.Fatal("sep==term should error")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"templates":[{"kind":"wat"}]}`), &p); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestProfileMultiTypeOrderPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var b strings.Builder
	for i := 0; i < 120; i++ {
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "B|%d|%d\n", i, rng.Intn(10000))
		} else {
			fmt.Fprintf(&b, "A;%d;%d.%d\n", i, rng.Intn(7), rng.Intn(3))
		}
	}
	data := []byte(b.String())
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) < 2 {
		t.Skipf("discovery found %d types", len(res.Structures))
	}
	res2, err := ExtractWithProfile(data, res.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != len(res.Records) {
		t.Fatalf("profile re-extraction: %d records vs %d", len(res2.Records), len(res.Records))
	}
	for i := range res2.Records {
		if res2.Records[i].Type != res.Records[i].Type {
			t.Fatalf("record %d type differs", i)
		}
	}
}
